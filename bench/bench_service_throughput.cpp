// Serving benchmarks, two layers:
//
//  1. Hot path — RegressorScorer::score on a private replica at the
//     service's poses_per_batch (32): poses/sec plus the featurize/forward
//     phase split for all four scorer families (3D-CNN, SG-CNN, Fusion,
//     Vina), and a fused-vs-unfused GEMM epilogue microbench. This is the
//     number the zero-allocation engine (workspace arenas + fused epilogues
//     + batched block-diagonal SG-CNN) moves.
//
//  2. Service — the ScoringService's cross-client micro-batching against
//     per-client serial scoring (the pre-service world): C concurrent
//     clients streaming small pose requests at one shared CNN backend,
//     in ordered-stream and coalescing modes.
//
// Run modes:
//   bench_service_throughput                — human-readable tables
//   bench_service_throughput --json[=PATH]  — also write BENCH_service.json
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "chem/conformer.h"
#include "chem/graph_featurizer.h"
#include "compile/model_compiler.h"
#include "core/gemm.h"
#include "dock/mmgbsa.h"
#include "models/checkpoint.h"
#include "serve/registry.h"
#include "serve/service.h"

using namespace df;
using namespace df::bench;

namespace {

constexpr int kClients = 4;
constexpr int kPosesPerClient = 32;
constexpr int kPosesPerRequest = 8;   // clients stream small requests
constexpr int kPosesPerBatch = 32;    // service micro-batch target
constexpr int kRounds = 2;            // best-of timing (service comparison)
constexpr int kHotPathReps = 12;      // score() calls per timing round
constexpr int kHotPathRounds = 5;     // rounds per hot-path sample set

/// Round-to-round spread of a repeated timing sample. The median is the
/// headline (robust to a one-off scheduler hiccup, unlike best-of which
/// reports the luckiest round); min/max bound the spread and the
/// coefficient of variation says whether the number is trustworthy at all
/// (CoV above a few percent means rerun on a quieter machine).
struct SampleStats {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double cov = 0.0;  // stddev / mean
};

SampleStats sample_stats(std::vector<double> samples) {
  SampleStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.median = n % 2 == 1 ? samples[n / 2] : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double mean = 0.0;
  for (double v : samples) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : samples) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  s.cov = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
  return s;
}

/// Table-3-shaped 3D-CNN (the paper's production scorer scale at our bench
/// grid): the batched dense head and amortized per-call costs are where
/// micro-batching pays on a single core; on parallel hardware predict_batch
/// additionally fans samples across the compute pool (docs/PERF.md).
models::Cnn3dConfig service_cnn_config() {
  models::Cnn3dConfig cfg = bench_cnn3d_config();
  cfg.conv_filters1 = 32;
  cfg.conv_filters2 = 64;
  cfg.dense_nodes = 128;
  return cfg;
}

struct Workload {
  std::vector<chem::Atom> pocket;
  std::vector<std::vector<serve::PoseInput>> client_poses;  // [client][pose]
};

Workload make_workload() {
  Workload w;
  core::Rng rng(17);
  w.pocket = data::make_pocket({5.5f, 48, 0.7f, 0.5f, 0.1f}, rng);
  w.client_poses.resize(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPosesPerClient; ++i) {
      chem::Molecule lig = chem::generate_molecule({}, rng);
      chem::embed_conformer(lig, rng);
      lig.translate(core::Vec3{} - lig.centroid());
      serve::PoseInput p;
      p.ligand = std::move(lig);
      p.pocket = &w.pocket;
      w.client_poses[static_cast<size_t>(c)].push_back(std::move(p));
    }
  }
  return w;
}

/// All four scorer families at the bench model scale, registered under
/// their canonical names.
serve::ModelRegistry make_registry() {
  serve::ModelRegistry reg;
  chem::VoxelConfig voxel;
  voxel.grid_dim = kGridDim;
  serve::add_regressor(reg, "cnn3d", [] {
    core::Rng mrng(9);
    return std::make_unique<models::Cnn3d>(service_cnn_config(), mrng);
  }, voxel);
  serve::add_regressor(reg, "sgcnn", [] {
    core::Rng mrng(10);
    return std::make_unique<models::Sgcnn>(bench_sgcnn_config(), mrng);
  }, voxel);
  serve::add_regressor(reg, "fusion", [] {
    core::Rng mrng(11);
    auto cnn = std::make_shared<models::Cnn3d>(bench_cnn3d_config(), mrng);
    auto sg = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), mrng);
    return std::make_unique<models::FusionModel>(
        bench_fusion_config(models::FusionKind::Mid), std::move(cnn), std::move(sg), mrng);
  }, voxel);
  reg.add("vina_pk", [] { return std::make_unique<serve::VinaPkScorer>(); });

  // Int8 siblings of the three net families: same weight seeds, so the
  // fp32-vs-int8 rows differ only by the quantization itself.
  serve::add_quantized_regressor(reg, "cnn3d_int8", [] {
    core::Rng mrng(9);
    return std::make_unique<models::Cnn3d>(service_cnn_config(), mrng);
  }, voxel);
  serve::add_quantized_regressor(reg, "sgcnn_int8", [] {
    core::Rng mrng(10);
    return std::make_unique<models::Sgcnn>(bench_sgcnn_config(), mrng);
  }, voxel);
  serve::add_quantized_regressor(reg, "fusion_int8", [] {
    core::Rng mrng(11);
    auto cnn = std::make_shared<models::Cnn3d>(bench_cnn3d_config(), mrng);
    auto sg = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), mrng);
    return std::make_unique<models::FusionModel>(
        bench_fusion_config(models::FusionKind::Mid), std::move(cnn), std::move(sg), mrng);
  }, voxel);
  return reg;
}

const char* dtype_of(const std::string& family) {
  return family.size() > 5 && family.compare(family.size() - 5, 5, "_int8") == 0 ? "int8"
                                                                                 : "fp32";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---- hot path: direct scorer at poses_per_batch -------------------------

struct HotPathResult {
  std::string family;
  SampleStats pps;                      // poses/sec across kHotPathRounds rounds
  double featurize_ms_per_batch = 0.0;  // 0 for non-Regressor backends
  double forward_ms_per_batch = 0.0;
};

HotPathResult run_hot_path(const serve::ModelRegistry& reg, const std::string& family,
                           const Workload& w) {
  HotPathResult r;
  r.family = family;
  std::unique_ptr<serve::Scorer> scorer = reg.make(family);
  std::vector<const serve::PoseInput*> batch;
  for (int i = 0; i < kPosesPerBatch; ++i) {
    batch.push_back(&w.client_poses[0][static_cast<size_t>(i)]);
  }
  for (int i = 0; i < 2; ++i) scorer->score(batch);  // warm arenas + caches

  auto* regressor = dynamic_cast<serve::RegressorScorer*>(scorer.get());
  const auto stats0 = regressor != nullptr ? regressor->phase_stats()
                                           : serve::RegressorScorer::PhaseStats{};
  std::vector<double> samples;
  for (int round = 0; round < kHotPathRounds; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kHotPathReps; ++i) {
      volatile float sink = scorer->score(batch)[0];
      (void)sink;
    }
    samples.push_back(kHotPathReps * kPosesPerBatch / seconds_since(t0));
  }
  r.pps = sample_stats(std::move(samples));
  if (regressor != nullptr) {
    const auto stats1 = regressor->phase_stats();
    const double batches = static_cast<double>(stats1.batches - stats0.batches);
    r.featurize_ms_per_batch =
        (stats1.featurize_seconds - stats0.featurize_seconds) / batches * 1e3;
    r.forward_ms_per_batch = (stats1.forward_seconds - stats0.forward_seconds) / batches * 1e3;
  }
  return r;
}

// ---- pipelined scoring + pocket cache -----------------------------------

std::vector<chem::Atom> make_cloud_pocket(int n, core::Rng& rng);  // defined below

struct PipelinedResult {
  std::string family;
  int fsv = 1;
  int pocket_atoms = 0;
  SampleStats seq;   // poses/s, sequential score(), no cache (the PR 9 path)
  SampleStats pipe;  // poses/s, depth-2 pipeline + cross-request pocket cache
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// cnn3d + fusion registered against a specific feature-set version (the
/// conv input width follows the voxel channel count).
serve::ModelRegistry make_fsv_registry(int fsv) {
  serve::ModelRegistry reg;
  chem::VoxelConfig voxel;
  voxel.grid_dim = kGridDim;
  voxel.feature_set_version = fsv;
  chem::GraphFeaturizerConfig graph;
  graph.feature_set_version = fsv;
  const int ch = voxel.channels();
  serve::add_regressor(reg, "cnn3d", [ch] {
    core::Rng mrng(9);
    models::Cnn3dConfig cfg = service_cnn_config();
    cfg.in_channels = ch;
    return std::make_unique<models::Cnn3d>(cfg, mrng);
  }, voxel, graph);
  serve::add_regressor(reg, "fusion", [ch] {
    core::Rng mrng(11);
    models::Cnn3dConfig cc = bench_cnn3d_config();
    cc.in_channels = ch;
    auto cnn = std::make_shared<models::Cnn3d>(cc, mrng);
    auto sg = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), mrng);
    return std::make_unique<models::FusionModel>(
        bench_fusion_config(models::FusionKind::Mid), std::move(cnn), std::move(sg), mrng);
  }, voxel, graph);
  return reg;
}

/// Sequential score() (exactly what every batch paid before this PR) vs
/// the depth-2 stage pipeline with a shared pocket cache, same replica
/// shape, same poses — bitwise-identical outputs, different wall clock.
/// The two wins separate cleanly: the cache removes repeated pocket
/// featurization (per batch at v1, per *pose* at v2, where the H-bond
/// channel had disabled pocket-grid amortization entirely), while the
/// overlap of featurize(N+1) with forward(N) only pays when a spare core
/// can run the stage thread — on a single-core host it measures ~1.0x by
/// construction.
///
/// The receptor is a protein-density cloud at binding-site scale rather
/// than the 48-atom workload pocket: real pocket crops are thousands of
/// heavy atoms (the paper voxelizes the receptor region around the site),
/// and that is the regime whose repeated splat/crop/cell-list work the
/// cache exists to remove. Ligands are shared with the main workload.
PipelinedResult run_pipelined(const std::string& family, int fsv,
                              const std::vector<chem::Atom>& pocket, const Workload& w) {
  PipelinedResult r;
  r.family = family;
  r.fsv = fsv;
  r.pocket_atoms = static_cast<int>(pocket.size());
  const serve::ModelRegistry reg = make_fsv_registry(fsv);
  std::vector<serve::PoseInput> poses;
  std::vector<const serve::PoseInput*> batch;
  poses.reserve(static_cast<size_t>(kPosesPerBatch));
  for (int i = 0; i < kPosesPerBatch; ++i) {
    serve::PoseInput p;
    p.ligand = w.client_poses[0][static_cast<size_t>(i)].ligand;
    p.pocket = &pocket;
    poses.push_back(std::move(p));
  }
  for (const serve::PoseInput& p : poses) batch.push_back(&p);

  std::vector<float> seq_scores;
  {
    std::unique_ptr<serve::Scorer> scorer = reg.make(family);
    for (int i = 0; i < 2; ++i) seq_scores = scorer->score(batch);
    std::vector<double> samples;
    for (int round = 0; round < kHotPathRounds; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kHotPathReps; ++i) {
        volatile float sink = scorer->score(batch)[0];
        (void)sink;
      }
      samples.push_back(kHotPathReps * kPosesPerBatch / seconds_since(t0));
    }
    r.seq = sample_stats(std::move(samples));
  }

  {
    std::unique_ptr<serve::Scorer> scorer = reg.make(family);
    auto* regressor = dynamic_cast<serve::RegressorScorer*>(scorer.get());
    auto cache = std::make_shared<serve::PocketCache>(4);
    regressor->set_pocket_cache(cache);
    regressor->set_pipeline_depth(2);
    serve::ScorerPipeline* pipe = regressor->pipeline();
    for (int i = 0; i < 2; ++i) {  // warm both ring slots + the cache entry
      pipe->submit(batch);
      pipe->submit(batch);
      pipe->collect();
      const std::vector<float> got = pipe->collect();
      // The headline claim is "bitwise-identical outputs" — enforce it here
      // (same deterministic factory, same poses), like bench_training does.
      if (std::memcmp(got.data(), seq_scores.data(), got.size() * sizeof(float)) != 0) {
        std::fprintf(stderr, "pipelined %s v%d diverged from sequential scores\n",
                     family.c_str(), fsv);
        std::exit(1);
      }
    }
    std::vector<double> samples;
    for (int round = 0; round < kHotPathRounds; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      int submitted = 0, collected = 0;
      while (collected < kHotPathReps) {
        if (submitted < kHotPathReps && pipe->in_flight() < 2) {
          pipe->submit(batch);
          ++submitted;
        } else {
          volatile float sink = pipe->collect()[0];
          (void)sink;
          ++collected;
        }
      }
      samples.push_back(kHotPathReps * kPosesPerBatch / seconds_since(t0));
    }
    r.pipe = sample_stats(std::move(samples));
    r.cache_hits = cache->stats().hits;
    r.cache_misses = cache->stats().misses;
  }
  return r;
}

// ---- epilogue microbench ------------------------------------------------

struct EpilogueResult {
  double fused_ms = 0.0;
  double unfused_ms = 0.0;
};

/// Fused bias+activation epilogue vs gemm-then-elementwise at the fusion
/// head's gather shape (many rows, narrow SELU-activated output).
EpilogueResult run_epilogue_bench() {
  core::Rng rng(29);
  const int64_t m = 2048, n = 48, k = 38;
  core::Tensor a = core::Tensor::randn({m, k}, rng);
  core::Tensor b = core::Tensor::randn({k, n}, rng);
  core::Tensor bias = core::Tensor::randn({n}, rng);
  core::Tensor out({m, n});
  core::Epilogue ep;
  ep.act = core::EpilogueAct::kSELU;
  ep.bias_col = bias.data();

  const int reps = 200;
  EpilogueResult r;
  double best_fused = 1e30, best_unfused = 1e30;
  for (int round = 0; round < 3; ++round) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      core::sgemm(false, false, m, n, k, a.data(), k, b.data(), n, out.data(), n, false, &ep);
    }
    best_fused = std::min(best_fused, seconds_since(t0));
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      core::sgemm(false, false, m, n, k, a.data(), k, b.data(), n, out.data(), n);
      for (int64_t r2 = 0; r2 < m; ++r2) {
        float* row = out.data() + r2 * n;
        for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
      }
      for (int64_t i2 = 0; i2 < out.numel(); ++i2) {
        const float v = out[i2];
        out[i2] = v > 0.0f ? 1.0507009873554805f * v
                           : 1.0507009873554805f * 1.6732632423543772f * (std::exp(v) - 1.0f);
      }
    }
    best_unfused = std::min(best_unfused, seconds_since(t0));
  }
  r.fused_ms = best_fused / reps * 1e3;
  r.unfused_ms = best_unfused / reps * 1e3;
  return r;
}

// ---- featurize neighbor engine: cell list vs brute force -----------------

struct NeighborResult {
  int pocket_atoms = 0;
  double graph_cell_ms = 0.0;   // GraphFeaturizer::featurize, ms/pose
  double graph_brute_ms = 0.0;
  double mmgbsa_cell_ms = 0.0;  // full mmgbsa_score, ms/pose
  double mmgbsa_brute_ms = 0.0;
};

/// Protein-like receptor neighborhood: heavy atoms uniform in a ball at
/// constant volume density (~0.055 atoms/A^3), so the ball radius grows as
/// cbrt(N) and larger systems extend well past the interaction cutoffs —
/// the regime a cell list exists for. Element mix mirrors make_pocket.
std::vector<chem::Atom> make_cloud_pocket(int n, core::Rng& rng) {
  const float radius =
      std::cbrt(3.0f * static_cast<float>(n) / (4.0f * 3.14159265f * 0.055f));
  std::vector<chem::Atom> pocket;
  pocket.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::Vec3 dir{rng.normal(0.0f, 1.0f), rng.normal(0.0f, 1.0f), rng.normal(0.0f, 1.0f)};
    const float len = std::max(1e-6f, dir.norm());
    const float r = radius * std::cbrt(rng.uniform());
    chem::Atom a;
    a.pos = core::Vec3{dir.x / len * r, dir.y / len * r, dir.z / len * r};
    const float u = rng.uniform();
    if (u < 0.10f) {
      a.element = rng.bernoulli(0.5) ? chem::Element::N : chem::Element::O;
      a.formal_charge = a.element == chem::Element::N ? 1 : -1;
    } else if (u < 0.60f) {
      a.element = chem::Element::C;
    } else {
      const float v = rng.uniform();
      a.element = v < 0.4f ? chem::Element::O : (v < 0.8f ? chem::Element::N : chem::Element::S);
      a.implicit_h = rng.bernoulli(0.5) ? 1 : 0;
    }
    pocket.push_back(a);
  }
  return pocket;
}

/// Featurize-phase cost of the two neighbor-search paths at growing
/// receptor sizes (constant density — extent grows as cbrt(N)). Both paths
/// produce bitwise-identical outputs (tests/test_cell_list.cpp), so this
/// block is pure perf: the brute pairwise scans touch all N atoms per
/// probe, the cell-list engine only the local neighborhood. The graph row
/// uncaps the pocket crop (max_pocket_atoms = N) so its edge scans scale
/// with receptor size like the MM-GBSA terms do; the serving default keeps
/// the 64-atom crop, where both paths cost the same few microseconds.
std::vector<NeighborResult> run_neighbor_bench() {
  std::vector<NeighborResult> out;
  core::Rng rng(23);
  chem::Molecule lig = chem::generate_molecule({}, rng);
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  for (int n : {48, 256, 1024, 4096, 16384}) {
    const std::vector<chem::Atom> pocket = make_cloud_pocket(n, rng);
    NeighborResult r;
    r.pocket_atoms = n;

    const int graph_reps = 4096 / n + 1;
    for (bool cells : {true, false}) {
      chem::GraphFeaturizerConfig gc;
      gc.use_cell_list = cells;
      gc.cell_list_min_atoms = 0;  // force the engine at every size
      gc.max_pocket_atoms = n;     // uncapped crop: edge scans scale with N
      const chem::GraphFeaturizer feat(gc);
      volatile float sink = feat.featurize(lig, pocket).node_features.at(0, 0);  // warm scratch
      double best = 1e30;
      for (int round = 0; round < 3; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < graph_reps; ++i) sink = feat.featurize(lig, pocket).node_features.at(0, 0);
        best = std::min(best, seconds_since(t0));
      }
      (void)sink;
      (cells ? r.graph_cell_ms : r.graph_brute_ms) = best / graph_reps * 1e3;
    }

    const int mm_reps = std::max(1, 256 / n);
    for (bool cells : {true, false}) {
      dock::MmGbsaConfig mc;
      mc.use_cell_list = cells;
      mc.cell_list_min_atoms = 0;  // force the engine at every size
      mc.gb_cutoff = 7.0f;  // finite GB cutoff so the polar term scales too
      volatile float sink = dock::mmgbsa_score(lig, pocket, mc);  // warm scratch
      double best = 1e30;
      for (int round = 0; round < 3; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < mm_reps; ++i) sink = dock::mmgbsa_score(lig, pocket, mc);
        best = std::min(best, seconds_since(t0));
      }
      (void)sink;
      (cells ? r.mmgbsa_cell_ms : r.mmgbsa_brute_ms) = best / mm_reps * 1e3;
    }
    out.push_back(r);
  }
  return out;
}

// ---- cold start: h5 checkpoint vs compiled artifact ----------------------

struct ColdStartResult {
  double h5_restore_ms = 0.0;        // factory + load_checkpoint
  double h5_first_batch_ms = 0.0;    // … + first scored batch
  double artifact_restore_ms = 0.0;  // load_compiled + workspace reserve
  double artifact_first_batch_ms = 0.0;
};

/// Time-to-first-scored-batch for a fresh cnn3d replica, both restore
/// paths. The h5 path pays checkpoint parsing, per-call GEMM packing on the
/// first forward, conv-plan construction and arena growth; the compiled
/// artifact ships pre-packed panels, pre-folded layers and the arena
/// high-water budgets, so its first batch is already the steady state. The
/// artifact mapping is opened once outside the timer (registration cost,
/// amortized over every replica a service mints).
ColdStartResult run_cold_start_bench(const Workload& w) {
  chem::VoxelConfig voxel;
  voxel.grid_dim = kGridDim;
  auto make_model = [] {
    core::Rng mrng(9);
    return std::make_unique<models::Cnn3d>(service_cnn_config(), mrng);
  };
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string h5 = (tmp / "BENCH_coldstart.h5lt").string();
  const std::string dfca = (tmp / "BENCH_coldstart.dfca").string();

  std::vector<const serve::PoseInput*> batch;
  for (int i = 0; i < kPosesPerBatch; ++i) {
    batch.push_back(&w.client_poses[0][static_cast<size_t>(i)]);
  }

  // Donor run: persist both restore formats; the warmed donor's arena
  // high-water marks become the artifact's workspace budgets.
  {
    auto donor_model = make_model();
    models::save_checkpoint(*donor_model, h5);
    serve::RegressorScorer donor("cnn3d", std::move(donor_model), voxel, {});
    for (int i = 0; i < 2; ++i) donor.score(batch);
    const auto budgets = donor.workspace_capacities();
    auto compiled = make_model();
    compile::save_compiled(*compiled, dfca, kPosesPerBatch,
                           {static_cast<int64_t>(budgets.forward_floats),
                            static_cast<int64_t>(budgets.feat_floats)});
  }

  serve::ModelRegistry creg;
  serve::add_compiled(creg, "cnn3d", dfca, voxel);

  ColdStartResult r;
  double h5_restore = 1e30, h5_first = 1e30, art_restore = 1e30, art_first = 1e30;
  for (int round = 0; round < 5; ++round) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      auto model = make_model();
      models::load_checkpoint(*model, h5);
      serve::RegressorScorer scorer("cnn3d", std::move(model), voxel, {});
      const double restore = seconds_since(t0);
      volatile float sink = scorer.score(batch)[0];
      (void)sink;
      h5_restore = std::min(h5_restore, restore);
      h5_first = std::min(h5_first, seconds_since(t0));
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      std::unique_ptr<serve::Scorer> scorer = creg.make("cnn3d");
      const double restore = seconds_since(t0);
      volatile float sink = scorer->score(batch)[0];
      (void)sink;
      art_restore = std::min(art_restore, restore);
      art_first = std::min(art_first, seconds_since(t0));
    }
  }
  r.h5_restore_ms = h5_restore * 1e3;
  r.h5_first_batch_ms = h5_first * 1e3;
  r.artifact_restore_ms = art_restore * 1e3;
  r.artifact_first_batch_ms = art_first * 1e3;
  std::filesystem::remove(h5);
  std::filesystem::remove(dfca);
  return r;
}

// ---- service comparison (cross-client batching vs serial) ---------------

/// Pre-service world: every client owns a replica and scores pose by pose.
double run_serial(const serve::ModelRegistry& reg, const Workload& w) {
  // Replica construction outside the timer, mirroring service warmup.
  std::vector<std::unique_ptr<serve::Scorer>> replicas;
  for (int c = 0; c < kClients; ++c) replicas.push_back(reg.make("cnn3d"));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::Scorer& scorer = *replicas[static_cast<size_t>(c)];
      for (const serve::PoseInput& p : w.client_poses[static_cast<size_t>(c)]) {
        const serve::PoseInput* ptr = &p;
        volatile float sink = scorer.score({ptr})[0];
        (void)sink;
      }
    });
  }
  for (auto& t : clients) t.join();
  return seconds_since(t0);
}

double run_service(const serve::ModelRegistry& reg, const Workload& w, bool ordered,
                   serve::ServiceStats* stats_out) {
  serve::ServiceConfig sc;
  sc.workers = 0;  // one worker per hardware thread; clients are just streams
  sc.poses_per_batch = kPosesPerBatch;
  sc.ordered_stream = ordered;
  sc.flush_deadline_ms = 1.0;
  serve::ScoringService service(reg, sc);
  service.warmup("cnn3d");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto& poses = w.client_poses[static_cast<size_t>(c)];
      std::vector<std::future<serve::ScoreResponse>> futures;
      for (size_t i = 0; i < poses.size(); i += kPosesPerRequest) {
        serve::ScoreRequest req;
        req.scorer = "cnn3d";
        req.client = "client" + std::to_string(c);
        const size_t end = std::min(poses.size(), i + kPosesPerRequest);
        req.poses.assign(poses.begin() + static_cast<long>(i),
                         poses.begin() + static_cast<long>(end));
        futures.push_back(service.submit(std::move(req)));
      }
      for (auto& f : futures) {
        const serve::ScoreResponse resp = f.get();
        if (resp.error != serve::ScoreError::kNone) {
          std::fprintf(stderr, "service error: %s\n", resp.message.c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double secs = seconds_since(t0);
  if (stats_out) *stats_out = service.stats();
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_flag_path(argc, argv, "BENCH_service.json");

  const Workload w = make_workload();
  const serve::ModelRegistry reg = make_registry();

  // ---- hot path (fp32 phase, then int8 phase) ----
  print_header("Serving hot path — direct scorer, batch of 32 poses");
  std::vector<HotPathResult> hot;
  for (const char* family : {"cnn3d", "sgcnn", "fusion", "vina_pk",
                             "cnn3d_int8", "sgcnn_int8", "fusion_int8"}) {
    hot.push_back(run_hot_path(reg, family, w));
  }
  std::printf("%-12s %6s %10s %9s %9s %6s %14s %13s\n", "family", "dtype", "poses/s", "min",
              "max", "cov%", "featurize ms/b", "forward ms/b");
  print_rule(88);
  for (const HotPathResult& r : hot) {
    std::printf("%-12s %6s %10.1f %9.1f %9.1f %5.1f%% %14.3f %13.3f\n", r.family.c_str(),
                dtype_of(r.family), r.pps.median, r.pps.min, r.pps.max, r.pps.cov * 100.0,
                r.featurize_ms_per_batch, r.forward_ms_per_batch);
  }
  std::printf("(poses/s = median of %d rounds x %d batches; min/max/CoV bound the spread)\n",
              kHotPathRounds, kHotPathReps);
  const auto pps_of = [&hot](const std::string& family) {
    for (const HotPathResult& r : hot) {
      if (r.family == family) return r.pps.median;
    }
    return 0.0;
  };
  std::printf("\nint8 end-to-end speedup: cnn3d %.2fx, sgcnn %.2fx, fusion %.2fx\n",
              pps_of("cnn3d_int8") / pps_of("cnn3d"), pps_of("sgcnn_int8") / pps_of("sgcnn"),
              pps_of("fusion_int8") / pps_of("fusion"));
  const EpilogueResult epi = run_epilogue_bench();
  std::printf("\nfused GEMM epilogue (2048x48x38, bias+SELU): %.3f ms vs unfused %.3f ms "
              "(%.2fx)\n\n",
              epi.fused_ms, epi.unfused_ms, epi.unfused_ms / epi.fused_ms);

  // ---- pipelined scoring + pocket cache ----
  print_header("Pipelined scoring + cross-request pocket cache (bitwise-identical outputs)");
  core::Rng pocket_rng(31);
  const std::vector<chem::Atom> site_pocket = make_cloud_pocket(2048, pocket_rng);
  std::vector<PipelinedResult> piped;
  for (int fsv : {1, 2}) {
    for (const char* family : {"cnn3d", "fusion"}) {
      piped.push_back(run_pipelined(family, fsv, site_pocket, w));
    }
  }
  std::printf("%-10s %4s %7s %13s %6s %18s %6s %9s %12s\n", "family", "fsv", "atoms",
              "seq poses/s", "cov%", "pipe+cache poses/s", "cov%", "speedup", "cache h/m");
  print_rule(96);
  for (const PipelinedResult& r : piped) {
    std::printf("%-10s %4d %7d %13.1f %5.1f%% %18.1f %5.1f%% %8.2fx %8llu/%llu\n",
                r.family.c_str(), r.fsv, r.pocket_atoms, r.seq.median, r.seq.cov * 100.0,
                r.pipe.median, r.pipe.cov * 100.0, r.pipe.median / r.seq.median,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses));
  }
  std::printf(
      "(binding-site-scale protein-density receptor; seq = plain score(), per-batch\n"
      " pocket work at v1, per-pose joint voxelize at v2; pipe = depth-2 stage pipeline\n"
      " + pocket cache. The cache win is core-count-independent; the featurize/forward\n"
      " overlap needs a spare core for the stage thread — on a single-core host it\n"
      " contributes ~nothing by construction.)\n\n");

  // ---- featurize neighbor engine ----
  print_header("Featurize neighbor engine — cell list vs brute-force pairwise scan");
  const std::vector<NeighborResult> nb = run_neighbor_bench();
  std::printf("%-12s %14s %14s %9s %14s %14s %9s\n", "pocket atoms", "graph cell ms",
              "graph brute ms", "speedup", "mmgbsa cell ms", "mmgbsa brute ms", "speedup");
  print_rule(92);
  for (const NeighborResult& r : nb) {
    std::printf("%-12d %14.4f %14.4f %8.2fx %14.3f %15.3f %8.2fx\n", r.pocket_atoms,
                r.graph_cell_ms, r.graph_brute_ms, r.graph_brute_ms / r.graph_cell_ms,
                r.mmgbsa_cell_ms, r.mmgbsa_brute_ms, r.mmgbsa_brute_ms / r.mmgbsa_cell_ms);
  }
  std::printf("\n");

  // ---- cold start ----
  print_header("Replica cold start — h5 checkpoint vs compiled artifact (cnn3d)");
  const ColdStartResult cold = run_cold_start_bench(w);
  std::printf("replica restore:            h5 %.2f ms, compiled artifact %.2f ms (%.2fx)\n",
              cold.h5_restore_ms, cold.artifact_restore_ms,
              cold.h5_restore_ms / cold.artifact_restore_ms);
  std::printf("time to first scored batch: h5 %.2f ms, compiled artifact %.2f ms (%.2fx)\n\n",
              cold.h5_first_batch_ms, cold.artifact_first_batch_ms,
              cold.h5_first_batch_ms / cold.artifact_first_batch_ms);

  // ---- service comparison ----
  print_header("ScoringService — cross-client batching vs per-client serial scoring");
  const double total_poses = static_cast<double>(kClients) * kPosesPerClient;
  std::printf("workload: %d clients x %d poses, %d-pose requests, batch target %d\n\n",
              kClients, kPosesPerClient, kPosesPerRequest, kPosesPerBatch);

  double serial_s = 1e30, ordered_s = 1e30, coalesced_s = 1e30;
  serve::ServiceStats ordered_stats, coalesced_stats;
  for (int round = 0; round < kRounds; ++round) {
    serial_s = std::min(serial_s, run_serial(reg, w));
    ordered_s = std::min(ordered_s, run_service(reg, w, /*ordered=*/true, &ordered_stats));
    coalesced_s = std::min(coalesced_s, run_service(reg, w, /*ordered=*/false, &coalesced_stats));
  }

  const double serial_pps = total_poses / serial_s;
  const double ordered_pps = total_poses / ordered_s;
  const double coalesced_pps = total_poses / coalesced_s;

  std::printf("%-34s %10s %12s %10s\n", "configuration", "time (s)", "poses/s", "speedup");
  print_rule(70);
  std::printf("%-34s %10.3f %12.1f %9.2fx\n", "per-client serial (baseline)", serial_s,
              serial_pps, 1.0);
  std::printf("%-34s %10.3f %12.1f %9.2fx\n", "service, ordered-stream", ordered_s, ordered_pps,
              ordered_pps / serial_pps);
  std::printf("%-34s %10.3f %12.1f %9.2fx\n", "service, cross-client batching", coalesced_s,
              coalesced_pps, coalesced_pps / serial_pps);
  print_rule(70);
  std::printf("request latency: ordered p50 %.3f ms / p99 %.3f ms, coalesced p50 %.3f ms / "
              "p99 %.3f ms\n",
              ordered_stats.latency.p50_ms(), ordered_stats.latency.p99_ms(),
              coalesced_stats.latency.p50_ms(), coalesced_stats.latency.p99_ms());
  std::printf("coalesced run: %llu batches (%llu full, %llu cross-client) for %llu requests\n",
              static_cast<unsigned long long>(coalesced_stats.batches),
              static_cast<unsigned long long>(coalesced_stats.full_batches),
              static_cast<unsigned long long>(coalesced_stats.coalesced_batches),
              static_cast<unsigned long long>(coalesced_stats.requests));
  const bool beats = coalesced_pps > serial_pps;
  std::printf("cross-client batching %s per-client serial scoring (%.2fx)\n",
              beats ? "beats" : "DOES NOT BEAT", coalesced_pps / serial_pps);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_service_throughput: cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"bench_service.v7\",\n"
                 "  \"workload\": {\"clients\": %d, \"poses_per_client\": %d, "
                 "\"poses_per_request\": %d, \"poses_per_batch\": %d, "
                 "\"feature_set_version\": %d, \"hot_path_rounds\": %d},\n"
                 "  \"hot_path\": {\n",
                 kClients, kPosesPerClient, kPosesPerRequest, kPosesPerBatch,
                 chem::GraphFeaturizerConfig{}.feature_set_version, kHotPathRounds);
    for (size_t i = 0; i < hot.size(); ++i) {
      const HotPathResult& r = hot[i];
      std::fprintf(out,
                   "    \"%s\": {\"dtype\": \"%s\", \"poses_per_second\": %.1f, "
                   "\"poses_per_second_min\": %.1f, \"poses_per_second_max\": %.1f, "
                   "\"poses_per_second_cov\": %.4f, "
                   "\"featurize_ms_per_batch\": %.3f, \"forward_ms_per_batch\": %.3f}%s\n",
                   json_escape(r.family).c_str(), dtype_of(r.family), r.pps.median, r.pps.min,
                   r.pps.max, r.pps.cov, r.featurize_ms_per_batch, r.forward_ms_per_batch,
                   i + 1 < hot.size() ? "," : "");
    }
    std::fprintf(out,
                 "  },\n"
                 "  \"int8_speedup\": {\"cnn3d\": %.3f, \"sgcnn\": %.3f, \"fusion\": %.3f},\n",
                 pps_of("cnn3d_int8") / pps_of("cnn3d"), pps_of("sgcnn_int8") / pps_of("sgcnn"),
                 pps_of("fusion_int8") / pps_of("fusion"));
    std::fprintf(out, "  \"pipelined_serving\": {\n");
    for (size_t i = 0; i < piped.size(); ++i) {
      const PipelinedResult& r = piped[i];
      std::fprintf(out,
                   "    \"%s_v%d\": {\"pocket_atoms\": %d, \"sequential_pps\": %.1f, "
                   "\"sequential_cov\": %.4f, "
                   "\"pipelined_cached_pps\": %.1f, \"pipelined_cached_cov\": %.4f, "
                   "\"speedup\": %.3f, \"cache_hits\": %llu, \"cache_misses\": %llu}%s\n",
                   json_escape(r.family).c_str(), r.fsv, r.pocket_atoms, r.seq.median, r.seq.cov,
                   r.pipe.median, r.pipe.cov, r.pipe.median / r.seq.median,
                   static_cast<unsigned long long>(r.cache_hits),
                   static_cast<unsigned long long>(r.cache_misses),
                   i + 1 < piped.size() ? "," : "");
    }
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"featurize_neighbor_engine\": {\n");
    for (size_t i = 0; i < nb.size(); ++i) {
      const NeighborResult& r = nb[i];
      std::fprintf(out,
                   "    \"pocket_%d\": {\"graph_cell_ms\": %.4f, \"graph_brute_ms\": %.4f, "
                   "\"graph_speedup\": %.3f, \"mmgbsa_cell_ms\": %.4f, "
                   "\"mmgbsa_brute_ms\": %.4f, \"mmgbsa_speedup\": %.3f}%s\n",
                   r.pocket_atoms, r.graph_cell_ms, r.graph_brute_ms,
                   r.graph_brute_ms / r.graph_cell_ms, r.mmgbsa_cell_ms, r.mmgbsa_brute_ms,
                   r.mmgbsa_brute_ms / r.mmgbsa_cell_ms, i + 1 < nb.size() ? "," : "");
    }
    std::fprintf(out, "  },\n");
    std::fprintf(out,
                 "  \"cold_start\": {\"h5_restore_ms\": %.3f, \"h5_first_batch_ms\": %.3f, "
                 "\"artifact_restore_ms\": %.3f, \"artifact_first_batch_ms\": %.3f, "
                 "\"restore_speedup\": %.3f, \"first_batch_speedup\": %.3f},\n"
                 "  \"epilogue\": {\"fused_ms\": %.4f, \"unfused_ms\": %.4f, "
                 "\"speedup\": %.3f},\n"
                 "  \"serial\": {\"seconds\": %.4f, \"poses_per_second\": %.1f},\n"
                 "  \"service_ordered\": {\"seconds\": %.4f, \"poses_per_second\": %.1f, "
                 "\"batches\": %llu, \"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f},\n"
                 "  \"service_coalesced\": {\"seconds\": %.4f, \"poses_per_second\": %.1f, "
                 "\"batches\": %llu, \"full_batches\": %llu, \"coalesced_batches\": %llu, "
                 "\"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f},\n"
                 "  \"speedup_coalesced_vs_serial\": %.3f,\n"
                 "  \"speedup_ordered_vs_serial\": %.3f,\n"
                 "  \"cross_client_batching_beats_serial\": %s\n"
                 "}\n",
                 cold.h5_restore_ms, cold.h5_first_batch_ms, cold.artifact_restore_ms,
                 cold.artifact_first_batch_ms, cold.h5_restore_ms / cold.artifact_restore_ms,
                 cold.h5_first_batch_ms / cold.artifact_first_batch_ms,
                 epi.fused_ms, epi.unfused_ms, epi.unfused_ms / epi.fused_ms, serial_s,
                 serial_pps, ordered_s, ordered_pps,
                 static_cast<unsigned long long>(ordered_stats.batches),
                 ordered_stats.latency.p50_ms(), ordered_stats.latency.p99_ms(), coalesced_s,
                 coalesced_pps, static_cast<unsigned long long>(coalesced_stats.batches),
                 static_cast<unsigned long long>(coalesced_stats.full_batches),
                 static_cast<unsigned long long>(coalesced_stats.coalesced_batches),
                 coalesced_stats.latency.p50_ms(), coalesced_stats.latency.p99_ms(),
                 coalesced_pps / serial_pps, ordered_pps / serial_pps,
                 beats ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  // Always exit 0: the verdict lives in the JSON/table. Perf margins are
  // machine- and noise-dependent; CI smokes this bench for the artifact,
  // not as a perf gate.
  return 0;
}
