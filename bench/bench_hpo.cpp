// Regenerates the paper's hyper-parameter optimization artifacts:
//   Table 1 — the search spaces offered to PB2 (printed verbatim from the
//             machine-readable SearchSpace definitions);
//   Tables 2/5 — final optimized configurations from an actual PB2 run over
//             the SG-CNN and Fusion spaces (population and interval counts
//             scaled down from the paper's 90-270 trials).
// The SG-CNN optimization trains real models — all population members
// concurrently on one shared pool via hpo::train_population (paper §3.2:
// the population IS the parallelism), with a search trajectory that is
// bitwise identical to a serial member loop; the fusion-space demo
// optimizes a synthetic response surface to keep the bench fast while
// still exercising exploit/explore and the time-varying GP.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/threadpool.h"
#include "hpo/pb2.h"

using namespace df;
using namespace df::bench;

namespace {

void print_space(const char* title, const hpo::SearchSpace& space) {
  std::printf("%s\n", title);
  for (const hpo::ParamSpec& s : space.specs()) {
    switch (s.type) {
      case hpo::ParamType::Continuous:
        std::printf("  %-24s uniform [%g, %g]\n", s.name.c_str(), s.lo, s.hi);
        break;
      case hpo::ParamType::LogContinuous:
        std::printf("  %-24s log-uniform [%g, %g]\n", s.name.c_str(), s.lo, s.hi);
        break;
      case hpo::ParamType::Categorical: {
        std::printf("  %-24s {", s.name.c_str());
        for (size_t i = 0; i < s.choices.size(); ++i) {
          std::printf("%s%g", i ? "," : "", s.choices[i]);
        }
        std::printf("}\n");
        break;
      }
      case hpo::ParamType::Boolean:
        std::printf("  %-24s T/F\n", s.name.c_str());
        break;
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Table 1 — hyper-parameter search spaces (PB2 inputs)");
  print_space("SG-CNN space:", hpo::sgcnn_search_space());
  print_space("3D-CNN space:", hpo::cnn3d_search_space());
  print_space("Fusion space:", hpo::fusion_search_space());

  // ---- real PB2 over the SG-CNN space (Table 2 analogue) ----
  print_header("Table 2 analogue — PB2 over the SG-CNN space (real training)");
  Corpus c = make_corpus(2019, /*n=*/160, /*core=*/16);
  hpo::Pb2Config pcfg;
  pcfg.population = 6;  // paper: 90
  pcfg.seed = 29;
  hpo::SearchSpace space;
  // Restricted SG-CNN space for the live run (full space printed above).
  space.add_log_continuous("lr", 5e-4, 1e-2);
  space.add_categorical("batch_size", {8, 16});
  space.add_categorical("cov_k", {2, 3, 4});
  space.add_categorical("noncov_k", {2, 3, 4});
  space.add_categorical("noncov_gather_width", {24, 48});
  hpo::Pb2 pb2(space, pcfg);
  std::vector<hpo::HpoConfig> pop = pb2.initial_population();

  // Persistent trial models so PB2 exploitation can clone weights.
  std::vector<std::unique_ptr<models::Sgcnn>> trials(pop.size());
  auto build = [&](const hpo::HpoConfig& cfg, uint64_t seed) {
    models::SgcnnConfig mc = bench_sgcnn_config();
    mc.covalent_k = static_cast<int>(cfg.at("cov_k"));
    mc.noncovalent_k = static_cast<int>(cfg.at("noncov_k"));
    mc.noncovalent_gather_width = static_cast<int>(cfg.at("noncov_gather_width"));
    core::Rng mrng(seed);
    return std::make_unique<models::Sgcnn>(mc, mrng);
  };
  for (size_t i = 0; i < pop.size(); ++i) trials[i] = build(pop[i], 100 + i);

  const int intervals = 3;       // paper: many t_ready=100-epoch intervals
  const int epochs_per_interval = 2;
  // Shared pool: every trial of an interval trains concurrently as one
  // job; scores are keyed on per-trial seeds, so the trajectory is bitwise
  // the pool-free one.
  core::ThreadPool pool(std::min<size_t>(pop.size(), 6));
  const auto hpo_t0 = std::chrono::steady_clock::now();
  for (int interval = 0; interval < intervals; ++interval) {
    const std::vector<float> scores = hpo::train_population(
        pop.size(),
        [&](size_t i) {
          models::TrainConfig tc;
          tc.epochs = epochs_per_interval;
          tc.seed = 300 + i;
          tc.lr = static_cast<float>(pop[i].at("lr"));
          tc.batch_size = static_cast<int>(pop[i].at("batch_size"));
          return models::train_model(*trials[i], *c.train, *c.val, tc).epochs.back().val_mse;
        },
        &pool);
    const auto directives = pb2.report(scores);
    std::printf("interval %d: ", interval + 1);
    for (float s : scores) std::printf("%.3f ", s);
    std::printf("\n");
    for (size_t i = 0; i < pop.size(); ++i) {
      pop[i] = directives[i].config;
      if (directives[i].clone_weights_from) {
        const size_t donor = static_cast<size_t>(*directives[i].clone_weights_from);
        // Architecture params may have changed: rebuild, then copy weights
        // only when the structure still matches (Ray Tune restores a
        // checkpoint the same way).
        auto rebuilt = build(pop[i], 200 + i);
        if (rebuilt->num_parameters() == trials[donor]->num_parameters()) {
          models::copy_parameters(*rebuilt, *trials[donor]);
        }
        trials[i] = std::move(rebuilt);
      }
    }
  }
  std::printf("population of %zu trained concurrently on %zu pool workers: %.2f s total\n",
              pop.size(), pool.size(),
              std::chrono::duration<double>(std::chrono::steady_clock::now() - hpo_t0).count());
  std::printf("\nbest validation MSE: %.4f\nfinal SG-CNN hyper-parameters (Table 2 analogue):\n",
              pb2.best_score());
  for (const auto& [k, v] : pb2.best_config()) std::printf("  %-24s %g\n", k.c_str(), v);

  // ---- PB2 over the full fusion space on a synthetic response (fast) ----
  print_header("Table 5 analogue — PB2 over the Fusion space (synthetic response)");
  hpo::Pb2Config fcfg;
  fcfg.population = 12;  // paper: 270
  fcfg.seed = 31;
  hpo::Pb2 fpb2(hpo::fusion_search_space(), fcfg);
  std::vector<hpo::HpoConfig> fpop = fpb2.initial_population();
  // Synthetic response encoding the paper's converged preferences: lower
  // loss for pre-trained heads, ~4 fusion layers, moderate dropout, lr near
  // 1e-4 (Table 5).
  auto response = [](const hpo::HpoConfig& cfg) {
    const double lr_term = std::pow(std::log10(cfg.at("lr")) + 4.0, 2.0);  // optimum 1e-4
    const double layer_term = std::pow(cfg.at("num_fusion_layers") - 4.0, 2.0);
    const double pre_term = cfg.at("pre_trained") > 0.5 ? 0.0 : 0.8;
    const double drop_term = std::pow(cfg.at("dropout1") - 0.39, 2.0) * 4.0;
    return static_cast<float>(0.5 + 0.3 * lr_term + 0.2 * layer_term + pre_term + drop_term);
  };
  for (int interval = 0; interval < 10; ++interval) {
    std::vector<float> scores;
    for (const auto& cfgv : fpop) scores.push_back(response(cfgv));
    const auto directives = fpb2.report(scores);
    for (size_t i = 0; i < fpop.size(); ++i) fpop[i] = directives[i].config;
  }
  std::printf("converged fusion configuration (paper Table 5 shape: pre-trained=T,\n"
              "4 fusion layers, dropout1~0.39, lr~1e-4):\n");
  for (const auto& [k, v] : fpb2.best_config()) std::printf("  %-24s %g\n", k.c_str(), v);
  std::printf("\nbest synthetic loss: %.4f\n", fpb2.best_score());
  return 0;
}
