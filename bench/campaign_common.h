// Shared SARS-CoV-2 campaign fixture for the Figure 5 / Figure 6 / Table 8
// benchmarks: trains the Coherent Fusion scorer once on the synthetic
// PDBbind corpus, then screens a compound library against the four paper
// targets through the full ConveyorLC + fault-tolerant-job pipeline.
#pragma once

#include <memory>

#include "bench_common.h"
#include "screen/campaign.h"

namespace df::bench {

struct FusionBundle {
  std::shared_ptr<models::Cnn3d> cnn;
  std::shared_ptr<models::Sgcnn> sg;
  std::shared_ptr<models::FusionModel> fusion;
};

/// Train the scaled Coherent Fusion recipe (Table 2/3/5 shapes).
inline FusionBundle train_coherent_fusion(Corpus& c, core::Rng& rng, bool verbose = false) {
  FusionBundle b;
  b.sg = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), rng);
  models::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 2.66e-3f;
  tc.batch_size = 16;
  tc.verbose = verbose;
  models::train_model(*b.sg, *c.train, *c.val, tc);
  b.cnn = std::make_shared<models::Cnn3d>(bench_cnn3d_config(), rng);
  tc.epochs = 6;
  tc.lr = 1e-4f;
  tc.batch_size = 12;
  models::train_model(*b.cnn, *c.train, *c.val, tc);
  b.fusion = std::make_shared<models::FusionModel>(
      bench_fusion_config(models::FusionKind::Coherent), b.cnn, b.sg, rng);
  b.fusion->set_kind(models::FusionKind::Mid);  // trunk warm-up, then coherent
  tc.epochs = 3;
  tc.lr = 4e-4f;
  models::train_model(*b.fusion, *c.train, *c.val, tc);
  b.fusion->set_kind(models::FusionKind::Coherent);
  tc.epochs = 3;
  tc.lr = 1.08e-4f;
  models::train_model(*b.fusion, *c.train, *c.val, tc);
  return b;
}

/// Per-rank model factory: rebuild the same architecture and copy the
/// trained weights (ranks run concurrently; models are stateful).
inline screen::ModelFactory fusion_factory(const FusionBundle& master) {
  return [&master]() -> std::unique_ptr<models::Regressor> {
    core::Rng rng(123);
    auto cnn = std::make_shared<models::Cnn3d>(bench_cnn3d_config(), rng);
    auto sg = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), rng);
    auto fusion = std::make_unique<models::FusionModel>(
        bench_fusion_config(models::FusionKind::Coherent), cnn, sg, rng);
    models::copy_parameters(*fusion, *master.fusion);
    return fusion;
  };
}

/// Run the four-target SARS-CoV-2 screen (scaled: paper screened 500M+
/// compounds; we screen `n_compounds` drawn from the Enamine-like profile).
inline screen::CampaignReport run_sarscov2_campaign(const FusionBundle& master, int n_compounds,
                                                    uint64_t seed,
                                                    std::vector<data::Target>* targets_out) {
  core::Rng rng(seed);
  std::vector<data::Target> targets = data::make_sars_cov2_targets(rng);
  if (targets_out) *targets_out = targets;

  screen::CampaignConfig cfg;
  cfg.job.nodes = 1;
  cfg.job.gpus_per_node = 4;
  cfg.job.batch_size_per_rank = 56;
  cfg.job.voxel.grid_dim = kGridDim;
  cfg.poses_per_job = 256;
  cfg.pipeline.docking.num_runs = 4;
  cfg.pipeline.docking.steps_per_run = 50;
  cfg.pipeline.docking.max_poses = 4;
  cfg.pipeline.rescore_top_n = 2;
  cfg.seed = seed;

  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::Enamine, n_compounds), rng);
  screen::ScreeningCampaign campaign(cfg, targets);
  return campaign.run(compounds, fusion_factory(master));
}

}  // namespace df::bench
