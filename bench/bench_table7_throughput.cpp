// Regenerates paper Table 7: throughput of a single Fusion scoring job and
// of the 125-parallel-job peak. Two layers of evidence:
//   1. a REAL mini-job run through the screening harness (measured
//      startup/eval/output phases and per-rank pose rate on this machine),
//      scored through the shared ScoringService;
//   2. the calibrated throughput model at paper scale (2M poses, 4 nodes,
//      batch 56; peak = 125 jobs / 500 nodes), with paper-default phase
//      constants, reproducing Table 7's rows.
//
// Run modes:
//   bench_table7_throughput                — human-readable table
//   bench_table7_throughput --json[=PATH]  — also write the measurements to
//                                            PATH (default
//                                            BENCH_table7_throughput.json)
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "chem/conformer.h"
#include "screen/job.h"
#include "screen/scale_model.h"
#include "serve/service.h"

using namespace df;
using namespace df::bench;

int main(int argc, char** argv) {
  const std::string json_path = json_flag_path(argc, argv, "BENCH_table7_throughput.json");

  print_header("Table 7 — Fusion screening throughput (single job vs peak)");

  // --- measured mini-job ---
  core::Rng rng(5);
  const auto pocket = data::make_pocket({5.5f, 64, 0.7f, 0.5f, 0.1f}, rng);
  std::vector<screen::PoseWorkItem> items;
  const int n_poses = 600;  // paper job: 2,000,000
  for (int i = 0; i < n_poses; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    screen::PoseWorkItem item;
    item.compound_id = i / 10;
    item.pose_id = i % 10;
    item.ligand = std::move(lig);
    item.pocket = &pocket;
    items.push_back(std::move(item));
  }

  screen::JobConfig jc;
  jc.nodes = 1;
  jc.gpus_per_node = 4;  // 4 rank clients = 4 "GPU ranks"
  jc.batch_size_per_rank = 56;

  serve::ModelRegistry registry;
  chem::VoxelConfig voxel;
  voxel.grid_dim = kGridDim;
  serve::add_regressor(registry, "sgcnn", [] {
    core::Rng mrng(9);
    return std::make_unique<models::Sgcnn>(bench_sgcnn_config(), mrng);
  }, voxel);
  serve::ServiceConfig sc;
  sc.workers = jc.nodes * jc.gpus_per_node;  // one replica worker per rank
  serve::ScoringService service(registry, sc);

  screen::FusionScoringJob job(jc);
  std::printf("running a real mini-job: %d poses, %d ranks...\n", n_poses,
              jc.nodes * jc.gpus_per_node);
  const screen::JobReport r = job.run(items, service, "sgcnn");
  const double per_rank = r.poses_per_second / (jc.nodes * jc.gpus_per_node);
  std::printf("\n%-28s %12s\n", "Metric (measured mini-job)", "Value");
  print_rule(44);
  std::printf("%-28s %12.2f s\n", "Startup", r.startup_seconds);
  std::printf("%-28s %12.2f s\n", "Evaluation", r.eval_seconds);
  std::printf("%-28s %12.2f s\n", "File output", r.output_seconds);
  std::printf("%-28s %12.1f\n", "Poses per second", r.poses_per_second);
  std::printf("%-28s %12.2f\n\n", "Poses/s per rank", per_rank);

  // --- paper-scale model (Table 7 proper) ---
  screen::ThroughputModel model;  // paper-calibrated phase constants
  const screen::JobTimeBreakdown single = model.job_time(2'000'000, 4, 56);
  const screen::PeakThroughput peak = model.peak(125, 2'000'000, 4, 56, /*poses per compound*/ 10);

  std::printf("%-28s %14s %14s\n", "Metric", "Single Job", "Peak (125 jobs)");
  print_rule(60);
  std::printf("%-28s %11.0f min %14s\n", "Avg. Startup", single.startup_minutes, "\"");
  std::printf("%-28s %11.0f min %14s\n", "Avg. Evaluation", single.eval_minutes, "\"");
  std::printf("%-28s %11.1f min %14s\n", "Avg. File Output", single.output_minutes, "\"");
  std::printf("%-28s %14.0f %14.0f\n", "Poses per sec.", single.poses_per_second,
              peak.poses_per_second);
  std::printf("%-28s %14.0f %14.0f\n", "Poses per hour", single.poses_per_second * 3600,
              peak.poses_per_hour);
  std::printf("%-28s %14.0f %14.0f\n", "Compounds per hour",
              single.poses_per_second * 3600 / 10, peak.compounds_per_hour);
  print_rule(60);
  std::printf("paper Table 7: 20 min / 280 min / 6.5 min; 108 vs 13,594 poses/s;\n"
              "338,800 vs 48.6M poses/h; 33,880 vs 4.86M compounds/h\n\n");

  // Cost-ratio summary (§4.2): Fusion vs Vina vs MM/GBSA per node.
  const double fusion_per_node = single.poses_per_second / 4.0;
  std::printf("per-node rates: Vina ~10 poses/s, MM/GBSA ~0.067 poses/s, Fusion %.1f poses/s\n"
              "=> Fusion %.1fx faster than Vina, %.0fx faster than MM/GBSA\n"
              "(paper: ~27 poses/s/node, 2.7x and 403x)\n",
              fusion_per_node, fusion_per_node / 10.0, fusion_per_node / 0.067);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_table7_throughput: cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"bench_table7_throughput.v1\",\n"
                 "  \"measured_mini_job\": {\"poses\": %d, \"ranks\": %d, "
                 "\"startup_s\": %.4f, \"eval_s\": %.4f, \"output_s\": %.4f, "
                 "\"poses_per_second\": %.1f, \"poses_per_second_per_rank\": %.2f},\n"
                 "  \"paper_scale_model\": {\"single_job\": {\"startup_min\": %.1f, "
                 "\"eval_min\": %.1f, \"output_min\": %.1f, \"poses_per_second\": %.0f}, "
                 "\"peak_125_jobs\": {\"poses_per_second\": %.0f, \"poses_per_hour\": %.0f, "
                 "\"compounds_per_hour\": %.0f}}\n"
                 "}\n",
                 n_poses, jc.nodes * jc.gpus_per_node, r.startup_seconds, r.eval_seconds,
                 r.output_seconds, r.poses_per_second, per_rank, single.startup_minutes,
                 single.eval_minutes, single.output_minutes, single.poses_per_second,
                 peak.poses_per_second, peak.poses_per_hour, peak.compounds_per_hour);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
