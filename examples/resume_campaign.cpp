// Domain example: a fault-tolerant screening campaign that survives the
// death of its own driver process (paper §4.3 — at 8 nodes ~20% of jobs
// die; on a real cluster the submitting process is just as mortal). The
// campaign streams every finished work unit to per-rank shards, writes a
// compact checkpoint every K jobs, is killed mid-flight (simulated
// SIGKILL, torn shard block and all), and is then resumed — producing a
// report bit-identical to an uninterrupted run.
//
// Build & run:  ./build/resume_campaign
#include <cstdio>
#include <filesystem>

#include "examples_common.h"
#include "screen/writer.h"

using namespace df;

namespace {

screen::CampaignConfig base_config(const std::string& dir) {
  screen::CampaignConfig cfg = examples::demo_campaign_config();
  cfg.job.nodes = 8;  // wide jobs: ~20% die per attempt (§4.3)
  cfg.job.gpus_per_node = 1;
  cfg.job.inject_failures = true;
  cfg.poses_per_job = 12;
  cfg.output_prefix = dir + "/screen";
  cfg.checkpoint_path = dir + "/campaign.ckpt";
  cfg.checkpoint_every_jobs = 2;
  return cfg;
}

void print_summary(const char* tag, const screen::CampaignReport& r) {
  std::printf("%-14s jobs=%d failed=%d units=%d resumed=%d checkpoints=%d results=%zu\n", tag,
              r.jobs_run, r.jobs_failed, r.units_total, r.units_resumed, r.checkpoints_written,
              r.results.size());
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "df_resume_campaign").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::Rng rng(7);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Protease1, rng),
                                       data::make_target(data::TargetKind::Spike1, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::Enamine, 10), rng);
  std::printf("library: %zu compounds, %zu targets\n\n", compounds.size(), targets.size());

  // One ScoringService outlives all three campaign runs below — warm
  // replicas carry over, and ordered-stream mode keeps every run on
  // identical floating-point paths regardless of service worker count.
  auto ref_cfg = base_config(dir + "/ref");
  const serve::ModelRegistry registry = examples::demo_registry(ref_cfg);
  serve::ScoringService service(registry, examples::demo_service_config(ref_cfg));

  // --- reference: uninterrupted run in its own directory ---
  std::filesystem::create_directories(dir + "/ref");
  const auto reference =
      screen::ScreeningCampaign(ref_cfg, targets).run(compounds, service, "sgcnn");
  print_summary("uninterrupted", reference);

  // --- killed run: dies mid-shard-write halfway through its job attempts ---
  std::filesystem::create_directories(dir + "/kill");
  auto cfg = base_config(dir + "/kill");
  cfg.kill_after_attempts = reference.jobs_run / 2;
  cfg.kill_mid_write = true;
  try {
    screen::ScreeningCampaign(cfg, targets).run(compounds, service, "sgcnn");
    std::printf("ERROR: kill switch never fired\n");
    return 1;
  } catch (const screen::CampaignKilled& e) {
    std::printf("killed:        %s\n", e.what());
  }

  // --- resume: a fresh "process" picks up checkpoint + shards ---
  cfg.kill_after_attempts = -1;
  cfg.kill_mid_write = false;
  const auto resumed =
      screen::ScreeningCampaign(cfg, targets).run(compounds, service, "sgcnn");
  print_summary("resumed", resumed);

  // --- verify: bit-identical results, healthy manifest ---
  bool identical = reference.results.size() == resumed.results.size() &&
                   reference.jobs_run == resumed.jobs_run &&
                   reference.jobs_failed == resumed.jobs_failed;
  for (size_t i = 0; identical && i < reference.results.size(); ++i) {
    const auto& a = reference.results[i];
    const auto& b = resumed.results[i];
    identical = a.compound_id == b.compound_id && a.fusion_pk == b.fusion_pk &&
                a.percent_inhibition == b.percent_inhibition;
  }
  const auto damage = screen::verify_shard_manifest(cfg.output_prefix);
  std::printf("\nresumed == uninterrupted: %s\n", identical ? "yes (bitwise)" : "NO");
  std::printf("shard manifest:           %s\n", damage.empty() ? "all shards healthy" : "DAMAGED");
  for (const auto& d : damage) {
    std::printf("  %s: %s\n", d.file.c_str(), screen::shard_damage_name(d.kind));
  }
  std::filesystem::remove_all(dir);
  return identical && damage.empty() ? 0 : 1;
}
