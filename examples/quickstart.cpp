// Quickstart: the smallest end-to-end use of the deepfusion public API.
//   1. generate a synthetic PDBbind-style corpus,
//   2. train the two heads and a Coherent Fusion model,
//   3. serve the trained model from a ScoringService and predict the
//      binding affinity of a new complex through it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "data/splits.h"
#include "models/fusion.h"
#include "models/trainer.h"
#include "serve/service.h"
#include "stats/metrics.h"

using namespace df;

int main() {
  // --- 1. data: synthetic protein-ligand complexes with pK labels ---
  core::Rng rng(42);
  data::PdbbindConfig pcfg;
  pcfg.num_complexes = 150;
  pcfg.core_size = 15;
  std::printf("generating %d synthetic complexes...\n", pcfg.num_complexes);
  const auto records = data::SyntheticPdbbind(pcfg).generate(rng);
  const data::TrainValSplit split = data::pdbbind_train_val(records, 0.1f, rng);

  data::DatasetConfig dcfg;
  dcfg.voxel.grid_dim = 8;  // small grid: quickstart runs in seconds
  data::ComplexDataset train(&records, split.train, dcfg);
  data::ComplexDataset val(&records, split.val, dcfg);
  data::ComplexDataset core(&records, data::SyntheticPdbbind::core_indices(records), dcfg);

  // --- 2. models: SG-CNN + 3D-CNN heads, fused coherently ---
  models::SgcnnConfig sg_cfg;
  sg_cfg.covalent_gather_width = 12;
  sg_cfg.noncovalent_gather_width = 32;
  auto sg = std::make_shared<models::Sgcnn>(sg_cfg, rng);

  models::Cnn3dConfig cnn_cfg;
  cnn_cfg.grid_dim = 8;
  cnn_cfg.conv_filters1 = 8;
  cnn_cfg.conv_filters2 = 16;
  cnn_cfg.dense_nodes = 32;
  auto cnn = std::make_shared<models::Cnn3d>(cnn_cfg, rng);

  models::TrainConfig tc;
  tc.epochs = 8;
  tc.lr = 2.5e-3f;
  tc.batch_size = 16;
  tc.verbose = true;
  // Data-parallel training: 4 worker lanes over replicas from the factory.
  // The result is bit-identical to tc.threads = 1 (see docs/API.md), so
  // this is purely a wall-clock knob on multi-core machines.
  tc.threads = 4;
  tc.replica_factory = [sg_cfg] {
    core::Rng lane_rng(1);
    return std::make_unique<models::Sgcnn>(sg_cfg, lane_rng);
  };
  std::printf("\ntraining SG-CNN head (4 lanes)...\n");
  models::train_model(*sg, train, val, tc);
  tc.threads = 1;
  tc.replica_factory = nullptr;
  tc.epochs = 5;
  tc.lr = 1e-4f;
  tc.batch_size = 12;
  std::printf("\ntraining 3D-CNN head...\n");
  models::train_model(*cnn, train, val, tc);

  models::FusionConfig fcfg;
  fcfg.kind = models::FusionKind::Coherent;
  fcfg.fusion_nodes = 16;
  models::FusionModel fusion(fcfg, cnn, sg, rng);
  std::printf("\ntraining Coherent Fusion (trunk warm-up, then joint backprop)...\n");
  fusion.set_kind(models::FusionKind::Mid);
  tc.epochs = 2;
  tc.lr = 4e-4f;
  models::train_model(fusion, train, val, tc);
  fusion.set_kind(models::FusionKind::Coherent);
  tc.epochs = 2;
  tc.lr = 1e-4f;
  models::train_model(fusion, train, val, tc);

  // --- 3. evaluate on the held-out core set ---
  const std::vector<float> preds = models::evaluate(fusion, core);
  const std::vector<float> labels = models::labels_of(core);
  std::printf("\ncore-set RMSE=%.3f  Pearson=%.3f\n", stats::rmse(preds, labels),
              stats::pearson(preds, labels));

  // --- 4. serve the trained model: register a replica factory that clones
  // the trained weights, stand up a ScoringService, and score a held-out
  // complex through the public submit() API.
  serve::ModelRegistry registry;
  const models::RegressorFactory trained_fusion = [&] {
    core::Rng rrng(123);
    auto rcnn = std::make_shared<models::Cnn3d>(cnn_cfg, rrng);
    auto rsg = std::make_shared<models::Sgcnn>(sg_cfg, rrng);
    auto replica = std::make_unique<models::FusionModel>(fcfg, rcnn, rsg, rrng);
    models::copy_parameters(*replica, fusion);
    return replica;
  };
  chem::VoxelConfig voxel = dcfg.voxel;
  serve::add_regressor(registry, "fusion", trained_fusion, voxel);
  serve::ServiceConfig sc;
  sc.workers = 2;
  serve::ScoringService service(registry, sc);

  const data::ComplexRecord& probe =
      records[static_cast<size_t>(data::SyntheticPdbbind::core_indices(records)[0])];
  serve::ScoreRequest req;
  req.scorer = "fusion";
  serve::PoseInput pose;
  pose.ligand = probe.ligand;
  pose.pocket = &probe.pocket;
  pose.site_center = probe.site_center;
  req.poses.push_back(std::move(pose));
  const serve::ScoreResponse resp = service.score(std::move(req));
  if (resp.error != serve::ScoreError::kNone) {
    std::printf("service error: %s\n", resp.message.c_str());
    return 1;
  }
  std::printf("served prediction for %s: predicted pK=%.2f, experimental pK=%.2f\n",
              probe.id.c_str(), resp.scores[0], probe.pk);
  return 0;
}
