// Quickstart: the smallest end-to-end use of the deepfusion public API.
//   1. generate a synthetic PDBbind-style corpus,
//   2. train the two heads and a Coherent Fusion model,
//   3. predict the binding affinity of a new complex.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "data/splits.h"
#include "models/fusion.h"
#include "models/trainer.h"
#include "stats/metrics.h"

using namespace df;

int main() {
  // --- 1. data: synthetic protein-ligand complexes with pK labels ---
  core::Rng rng(42);
  data::PdbbindConfig pcfg;
  pcfg.num_complexes = 150;
  pcfg.core_size = 15;
  std::printf("generating %d synthetic complexes...\n", pcfg.num_complexes);
  const auto records = data::SyntheticPdbbind(pcfg).generate(rng);
  const data::TrainValSplit split = data::pdbbind_train_val(records, 0.1f, rng);

  data::DatasetConfig dcfg;
  dcfg.voxel.grid_dim = 8;  // small grid: quickstart runs in seconds
  data::ComplexDataset train(&records, split.train, dcfg);
  data::ComplexDataset val(&records, split.val, dcfg);
  data::ComplexDataset core(&records, data::SyntheticPdbbind::core_indices(records), dcfg);

  // --- 2. models: SG-CNN + 3D-CNN heads, fused coherently ---
  models::SgcnnConfig sg_cfg;
  sg_cfg.covalent_gather_width = 12;
  sg_cfg.noncovalent_gather_width = 32;
  auto sg = std::make_shared<models::Sgcnn>(sg_cfg, rng);

  models::Cnn3dConfig cnn_cfg;
  cnn_cfg.grid_dim = 8;
  cnn_cfg.conv_filters1 = 8;
  cnn_cfg.conv_filters2 = 16;
  cnn_cfg.dense_nodes = 32;
  auto cnn = std::make_shared<models::Cnn3d>(cnn_cfg, rng);

  models::TrainConfig tc;
  tc.epochs = 8;
  tc.lr = 2.5e-3f;
  tc.batch_size = 16;
  tc.verbose = true;
  std::printf("\ntraining SG-CNN head...\n");
  models::train_model(*sg, train, val, tc);
  tc.epochs = 5;
  tc.lr = 1e-4f;
  tc.batch_size = 12;
  std::printf("\ntraining 3D-CNN head...\n");
  models::train_model(*cnn, train, val, tc);

  models::FusionConfig fcfg;
  fcfg.kind = models::FusionKind::Coherent;
  fcfg.fusion_nodes = 16;
  models::FusionModel fusion(fcfg, cnn, sg, rng);
  std::printf("\ntraining Coherent Fusion (trunk warm-up, then joint backprop)...\n");
  fusion.set_kind(models::FusionKind::Mid);
  tc.epochs = 2;
  tc.lr = 4e-4f;
  models::train_model(fusion, train, val, tc);
  fusion.set_kind(models::FusionKind::Coherent);
  tc.epochs = 2;
  tc.lr = 1e-4f;
  models::train_model(fusion, train, val, tc);

  // --- 3. evaluate on the held-out core set and predict one complex ---
  const std::vector<float> preds = models::evaluate(fusion, core);
  const std::vector<float> labels = models::labels_of(core);
  std::printf("\ncore-set RMSE=%.3f  Pearson=%.3f\n", stats::rmse(preds, labels),
              stats::pearson(preds, labels));

  core::Rng frng(0);
  const data::Sample probe = core.get(0, frng);
  std::printf("single prediction: predicted pK=%.2f, experimental pK=%.2f\n",
              fusion.predict(probe), probe.label);
  return 0;
}
