// Shared fixtures for the examples: the deterministic demo SG-CNN scorer,
// the campaign-config boilerplate the screening demos used to duplicate,
// and the registry/service wiring that turns either into a running
// ScoringService.
#pragma once

#include <memory>

#include "models/sgcnn.h"
#include "screen/campaign.h"
#include "serve/service.h"

namespace df::examples {

/// Untrained-but-deterministic SG-CNN: same seed -> identical weights on
/// every replica, so demo screens are reproducible. Swap in a trained
/// FusionModel factory (see quickstart) for real use.
inline models::RegressorFactory demo_sgcnn_factory() {
  return [] {
    core::Rng rng(99);
    models::SgcnnConfig cfg;
    cfg.covalent_gather_width = 12;
    cfg.noncovalent_gather_width = 24;
    return std::make_unique<models::Sgcnn>(cfg, rng);
  };
}

/// Campaign boilerplate shared by the screening demos: small voxel grid and
/// short docking runs so the examples finish in seconds.
inline screen::CampaignConfig demo_campaign_config() {
  screen::CampaignConfig cfg;
  cfg.job.voxel.grid_dim = 8;
  cfg.pipeline.docking.num_runs = 4;
  cfg.pipeline.docking.steps_per_run = 40;
  cfg.pipeline.docking.max_poses = 3;
  cfg.pipeline.rescore_top_n = 1;
  return cfg;
}

/// Registry holding the demo SG-CNN under "sgcnn", featurized the way the
/// campaign's job config says.
inline serve::ModelRegistry demo_registry(const screen::CampaignConfig& cfg) {
  serve::ModelRegistry reg;
  serve::add_regressor(reg, "sgcnn", demo_sgcnn_factory(), cfg.job.voxel, cfg.job.graph);
  return reg;
}

/// Ordered-stream service config matching a campaign config — the mode that
/// preserves the campaign's bit-reproducibility guarantees.
inline serve::ServiceConfig demo_service_config(const screen::CampaignConfig& cfg,
                                                int workers = 2) {
  serve::ServiceConfig sc;
  sc.workers = workers;
  sc.poses_per_batch = cfg.job.poses_per_batch;
  sc.ordered_stream = true;
  return sc;
}

}  // namespace df::examples
