// Standalone serving demo: one ScoringService, many concurrent clients,
// several named backends — the paper's Fig. 3 "many producers feed the
// scorer" shape without a campaign anywhere in sight.
//
//   * clients stream small pose requests at different scorers concurrently;
//   * the dynamic micro-batcher coalesces same-scorer requests across
//     clients (watch coalesced_batches in the stats);
//   * a deliberately unknown scorer name shows the typed error path;
//   * a tiny queue capacity shows backpressure: submit() blocks until the
//     workers free space, and every request still completes.
//
// Build & run:  ./build/scoring_server
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "chem/conformer.h"
#include "data/target.h"
#include "examples_common.h"

using namespace df;

namespace {

std::vector<serve::PoseInput> random_poses(int n, const std::vector<chem::Atom>* pocket,
                                           core::Rng& rng) {
  std::vector<serve::PoseInput> poses;
  for (int i = 0; i < n; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = pocket;
    poses.push_back(std::move(p));
  }
  return poses;
}

}  // namespace

int main() {
  core::Rng rng(11);
  const auto pocket = data::make_pocket({5.5f, 48, 0.7f, 0.5f, 0.1f}, rng);

  // Every backend family behind one registry: physics scorers plus the
  // untrained reference nets (see serve::default_registry).
  chem::VoxelConfig voxel;
  voxel.grid_dim = 8;
  const serve::ModelRegistry registry = serve::default_registry(voxel);
  std::printf("registry: ");
  for (const auto& name : registry.names()) std::printf("%s ", name.c_str());
  std::printf("\n");

  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.poses_per_batch = 8;
  sc.queue_capacity = 24;      // small on purpose: shows backpressure
  sc.flush_deadline_ms = 2.0;  // let concurrent clients share batches
  serve::ScoringService service(registry, sc);
  std::printf("service: %d workers, batch %d, queue %zu poses\n\n", service.workers(),
              sc.poses_per_batch, sc.queue_capacity);

  // --- many clients, mixed backends, all concurrent ---
  struct ClientPlan {
    const char* name;
    const char* scorer;
    int requests;
    int poses_per_request;
  };
  const ClientPlan plans[] = {
      {"screener-A", "sgcnn", 6, 4},
      {"screener-B", "sgcnn", 6, 4},     // same backend: coalesces with A
      {"cnn-client", "cnn3d", 4, 4},
      {"docker", "vina_pk", 3, 8},
      {"rescorer", "mmgbsa", 1, 2},      // heavyweight physics, tiny request
  };
  std::vector<std::thread> clients;
  std::mutex print_mu;
  for (size_t ci = 0; ci < std::size(plans); ++ci) {
    const ClientPlan& plan = plans[ci];
    clients.emplace_back([&, plan, ci] {
      core::Rng crng(core::derive_stream(11, 0x434C49454E54ULL, ci));  // "CLIENT"
      std::vector<std::future<serve::ScoreResponse>> futures;
      for (int r = 0; r < plan.requests; ++r) {
        serve::ScoreRequest req;
        req.scorer = plan.scorer;
        req.client = plan.name;
        req.poses = random_poses(plan.poses_per_request, &pocket, crng);
        futures.push_back(service.submit(std::move(req)));
      }
      int poses = 0, batches = 0;
      bool coalesced = false;
      float first = 0;
      for (size_t i = 0; i < futures.size(); ++i) {
        const serve::ScoreResponse resp = futures[i].get();
        if (resp.error != serve::ScoreError::kNone) {
          std::lock_guard<std::mutex> lock(print_mu);
          std::printf("%-10s ERROR %s: %s\n", plan.name, serve::score_error_name(resp.error),
                      resp.message.c_str());
          return;
        }
        if (i == 0) first = resp.scores[0];
        poses += static_cast<int>(resp.scores.size());
        batches += resp.micro_batches;
        coalesced = coalesced || resp.coalesced;
      }
      std::lock_guard<std::mutex> lock(print_mu);
      std::printf("%-10s scored %2d poses with %-8s in %d micro-batches%s (first score %+.2f)\n",
                  plan.name, poses, plan.scorer, batches,
                  coalesced ? ", coalesced with other requests" : "", first);
    });
  }
  for (auto& t : clients) t.join();

  // --- typed errors instead of exceptions ---
  serve::ScoreRequest bad;
  bad.scorer = "alphafold42";
  bad.poses = random_poses(1, &pocket, rng);
  const serve::ScoreResponse err = service.score(std::move(bad));
  std::printf("\nunknown backend -> typed error %s: %s\n", serve::score_error_name(err.error),
              err.message.c_str());

  const serve::ServiceStats stats = service.stats();
  std::printf("\nservice stats: %llu requests, %llu poses, %llu batches "
              "(%llu full, %llu coalesced), %llu replicas, peak queue %zu poses\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.poses),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.full_batches),
              static_cast<unsigned long long>(stats.coalesced_batches),
              static_cast<unsigned long long>(stats.replicas_built),
              stats.peak_queued_poses);
  return 0;
}
