// Domain example: distributed-style hyper-parameter optimization with
// Population-Based Bandits — the paper's §3.2 training architecture in
// miniature. A population of SG-CNN trials trains in t_ready intervals —
// every member CONCURRENTLY on one shared pool via hpo::train_population,
// with a bitwise-identical search trajectory to a serial loop; after each
// interval the bottom half clones a top performer's weights and explores
// new hyper-parameters proposed by the time-varying GP bandit.
//
// Build & run:  ./build/hpo_pb2
#include <cstdio>

#include "core/threadpool.h"
#include "data/splits.h"
#include "hpo/pb2.h"
#include "models/sgcnn.h"
#include "models/trainer.h"

using namespace df;

int main() {
  core::Rng rng(5);
  data::PdbbindConfig pcfg;
  pcfg.num_complexes = 120;
  pcfg.core_size = 10;
  const auto records = data::SyntheticPdbbind(pcfg).generate(rng);
  const data::TrainValSplit split = data::pdbbind_train_val(records, 0.15f, rng);
  data::DatasetConfig dcfg;
  dcfg.voxel.grid_dim = 8;
  data::ComplexDataset train(&records, split.train, dcfg);
  data::ComplexDataset val(&records, split.val, dcfg);

  // Search space: a slice of the paper's Table-1 SG-CNN column.
  hpo::SearchSpace space;
  space.add_log_continuous("lr", 5e-4, 1e-2);
  space.add_categorical("batch_size", {8, 16});
  space.add_categorical("cov_k", {2, 3, 4});

  hpo::Pb2Config cfg;
  cfg.population = 4;  // paper: 90 trials on Lassen
  cfg.quantile = 0.5;  // paper: lambda% = 50
  hpo::Pb2 pb2(space, cfg);
  std::vector<hpo::HpoConfig> pop = pb2.initial_population();

  auto build = [&](const hpo::HpoConfig& c, uint64_t seed) {
    models::SgcnnConfig mc;
    mc.covalent_gather_width = 12;
    mc.noncovalent_gather_width = 24;
    mc.covalent_k = static_cast<int>(c.at("cov_k"));
    core::Rng mrng(seed);
    return std::make_unique<models::Sgcnn>(mc, mrng);
  };
  std::vector<std::unique_ptr<models::Sgcnn>> trials;
  for (size_t i = 0; i < pop.size(); ++i) trials.push_back(build(pop[i], i));

  // One shared pool: each trial trains as one job (the member stays serial
  // inside a pool worker), so the population is the parallelism — and the
  // scores, being keyed on per-trial seeds, are bitwise the same as a
  // serial member loop at any pool size.
  core::ThreadPool pool(std::min<size_t>(pop.size(), 4));
  for (int interval = 0; interval < 3; ++interval) {
    std::printf("=== interval %d (t_ready reached) ===\n", interval + 1);
    const std::vector<float> scores = hpo::train_population(
        pop.size(),
        [&](size_t i) {
          models::TrainConfig tc;
          tc.epochs = 2;
          tc.seed = 10 + i;
          tc.lr = static_cast<float>(pop[i].at("lr"));
          tc.batch_size = static_cast<int>(pop[i].at("batch_size"));
          return models::train_model(*trials[i], train, val, tc).epochs.back().val_mse;
        },
        &pool);
    for (size_t i = 0; i < pop.size(); ++i) {
      std::printf("  trial %zu: lr=%.2e bs=%d cov_k=%d -> val MSE %.3f\n", i, pop[i].at("lr"),
                  static_cast<int>(pop[i].at("batch_size")),
                  static_cast<int>(pop[i].at("cov_k")), scores[i]);
    }
    const auto directives = pb2.report(scores);
    for (size_t i = 0; i < pop.size(); ++i) {
      pop[i] = directives[i].config;
      if (directives[i].clone_weights_from) {
        const size_t donor = static_cast<size_t>(*directives[i].clone_weights_from);
        std::printf("  trial %zu exploits trial %zu and explores new hyper-parameters\n", i,
                    donor);
        auto rebuilt = build(pop[i], 50 + i);
        if (rebuilt->num_parameters() == trials[donor]->num_parameters()) {
          models::copy_parameters(*rebuilt, *trials[donor]);
        }
        trials[i] = std::move(rebuilt);
      }
    }
  }
  std::printf("\nbest val MSE %.4f with configuration:\n", pb2.best_score());
  for (const auto& [k, v] : pb2.best_config()) std::printf("  %-12s %g\n", k.c_str(), v);
  return 0;
}
