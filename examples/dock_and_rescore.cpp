// Domain example: the physics side of the pipeline — prepare a ligand from
// SMILES, dock it into an Mpro-like pocket with the ConveyorLC-equivalent
// stages, rescore the best poses with MM/GBSA, and compare the three energy
// models (Vina, MM/GBSA, score->pK conversion) on the same poses.
//
// Build & run:  ./build/examples/dock_and_rescore
#include <cstdio>

#include "data/target.h"
#include "chem/smiles.h"
#include "dock/conveyorlc.h"

using namespace df;

int main() {
  core::Rng rng(3);

  // CDT1Receptor: the protease1-like site.
  const data::Target target = data::make_target(data::TargetKind::Protease1, rng);
  const dock::ReceptorModel receptor = dock::ConveyorLC::prepare_receptor(target.pocket);
  std::printf("receptor: %s, %zu pocket atoms\n", target.name.c_str(), target.pocket.size());

  // CDT2Ligand: an aspirin-like input with a salt, straight from SMILES.
  const chem::Molecule raw = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O.Cl");
  std::printf("ligand: %zu atoms as drawn (incl. counter-ion)\n", raw.num_atoms());

  dock::PipelineConfig cfg;
  cfg.docking.num_runs = 8;        // the paper's 8 MC simulations
  cfg.docking.steps_per_run = 120;
  cfg.docking.max_poses = 5;
  cfg.rescore_top_n = 3;
  dock::ConveyorLC pipeline(cfg);

  const auto result = pipeline.run(raw, receptor, rng);
  if (!result) {
    std::printf("ligand rejected by preparation\n");
    return 1;
  }
  std::printf("prepared: %zu atoms, MW=%.1f, logP=%.2f, TPSA=%.1f, rotors=%d, charge=%+d\n\n",
              result->ligand.mol.num_atoms(), result->ligand.descriptors.molecular_weight,
              result->ligand.descriptors.logp, result->ligand.descriptors.tpsa,
              result->ligand.descriptors.rotatable_bonds, result->ligand.descriptors.formal_charge);

  std::printf("%-6s %12s %14s %12s\n", "pose", "Vina score", "MM/GBSA", "Vina->pK");
  for (size_t i = 0; i < result->poses.size(); ++i) {
    const float vina = result->poses[i].score;
    std::printf("%-6zu %12.3f %14s %12.2f\n", i, vina,
                i < result->mmgbsa_scores.size()
                    ? std::to_string(result->mmgbsa_scores[i]).substr(0, 8).c_str()
                    : "(not rescored)",
                dock::score_to_pk(vina));
  }
  std::printf("\nstage timings: ligand prep %.3fs, docking %.3fs, MM/GBSA %.3fs\n",
              result->ligand_prep_seconds, result->docking_seconds, result->mmgbsa_seconds);
  std::printf("(note the MM/GBSA-vs-docking cost ratio — the reason the paper rescores\n"
              "only the top poses, and the opening Fusion exploits)\n");
  return 0;
}
