// Domain example: a miniature SARS-CoV-2 virtual screening campaign — the
// paper's §4-5 workflow end to end. Compounds from a ZINC-like library are
// prepared (salt stripping, pH-7 protonation), docked against the four
// binding sites with the ConveyorLC-equivalent pipeline, scored by the
// shared ScoringService in fault-tolerant multi-rank jobs, and ranked; the
// top candidates are "sent to the lab" (assay simulator) and the hit rate
// is reported.
//
// Build & run:  ./build/examples/virtual_screen
#include <algorithm>
#include <cstdio>

#include "examples_common.h"

using namespace df;

int main() {
  core::Rng rng(7);
  std::vector<data::Target> targets = data::make_sars_cov2_targets(rng);
  std::printf("targets: ");
  for (const auto& t : targets) std::printf("%s ", t.name.c_str());
  std::printf("\n");

  // Library: ZINC-style approved drugs (salts and occasional metals, which
  // ligand prep must handle).
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::ZINC, 20), rng);
  std::printf("library: %zu compounds from %s\n\n", compounds.size(),
              data::library_name(compounds.front().source));

  screen::CampaignConfig cfg = examples::demo_campaign_config();
  cfg.job.nodes = 1;
  cfg.job.gpus_per_node = 4;
  cfg.job.inject_failures = true;  // exercise the fault-tolerant path
  cfg.poses_per_job = 128;

  // Scoring backend: the demo SG-CNN registered as "sgcnn" behind an
  // ordered-stream ScoringService; the campaign is just one client of it.
  const serve::ModelRegistry registry = examples::demo_registry(cfg);
  serve::ScoringService service(registry, examples::demo_service_config(cfg, /*workers=*/4));

  screen::ScreeningCampaign campaign(cfg, targets);
  const screen::CampaignReport report = campaign.run(compounds, service, "sgcnn");

  std::printf("pipeline: %d poses docked, %d rejected compounds, %d jobs (%d failed+retried)\n",
              report.poses_generated, report.compounds_rejected, report.jobs_run,
              report.jobs_failed);
  std::printf("stage times: docking %.1fs, MM/GBSA %.1fs, fusion scoring %.1fs\n\n",
              report.docking_seconds, report.mmgbsa_seconds, report.fusion_seconds);

  // Rank per target by predicted affinity and "purchase" the top 3.
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    std::vector<const screen::CompoundScreenResult*> rows;
    for (const auto& r : report.results) {
      if (static_cast<size_t>(r.target_index) == ti) rows.push_back(&r);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto* a, const auto* b) { return a->fusion_pk > b->fusion_pk; });
    std::printf("%s top candidates (assayed at %.0f uM):\n", targets[ti].name.c_str(),
                targets[ti].assay_concentration_uM);
    const size_t top = std::min<size_t>(3, rows.size());
    for (size_t i = 0; i < top; ++i) {
      std::printf("  %-14s predicted pK=%.2f  vina=%.2f  -> measured inhibition %.0f%%\n",
                  rows[i]->compound_id.c_str(), rows[i]->fusion_pk, rows[i]->vina_score,
                  rows[i]->percent_inhibition);
    }
  }
  return 0;
}
