// score_server_node — one scoring node of the multi-node topology: a
// standalone process hosting an ordered-stream ScoringService behind a
// ScoreServer. The chaos harness (tests/test_cluster_chaos.cpp) and the
// cluster load generator fork+exec this binary, SIGKILL it mid-campaign,
// and respawn it on the same port; everything it serves is a pure function
// of its flags, so a respawned node scores bit-identically to its previous
// life.
//
// Flags (all --name=value):
//   --port=N            listen port (default 0 = kernel-assigned)
//   --port-file=PATH    write the bound port (decimal + newline) once
//                       listening — the exec'ing parent's discovery handshake
//   --node-id=STR       name echoed in the Hello frame
//   --scorer=NAME       scorer to serve + warm up (default "sgcnn")
//   --model-seed=N      SG-CNN weight seed (default 31, the test factory's)
//   --voxel-grid=N      voxel featurizer grid dim (default 8)
//   --gather-cov=N / --gather-noncov=N / --k-cov=N / --k-noncov=N
//                       SG-CNN shape (defaults match tests/tiny_sg_factory)
//   --workers=N         service workers (default 2)
//   --poses-per-batch=N service micro-batch (default 32)
//   --ordered=0|1       ordered-stream mode (default 1)
//   --pipeline-depth=N  stage-pipelined scoring, N batches in flight per
//                       worker (default 0 = sequential; bitwise identical)
//   --pocket-cache=N    cross-request pocket cache, N LRU targets
//                       (default 0 = disabled; bitwise identical)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "models/sgcnn.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

std::atomic<bool> g_signalled{false};
void on_signal(int) { g_signalled.store(true); }

struct Flags {
  int port = 0;
  std::string port_file;
  std::string node_id;
  std::string scorer = "sgcnn";
  uint64_t model_seed = 31;
  int voxel_grid = 8;
  int gather_cov = 8;
  int gather_noncov = 12;
  int k_cov = 2;
  int k_noncov = 2;
  int workers = 2;
  int poses_per_batch = 32;
  bool ordered = true;
  int pipeline_depth = 0;
  int pocket_cache = 0;
};

bool parse_flag(const std::string& arg, const std::string& name, std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool parse_flags(int argc, char** argv, Flags* f) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (parse_flag(arg, "port", &v)) f->port = std::stoi(v);
    else if (parse_flag(arg, "port-file", &v)) f->port_file = v;
    else if (parse_flag(arg, "node-id", &v)) f->node_id = v;
    else if (parse_flag(arg, "scorer", &v)) f->scorer = v;
    else if (parse_flag(arg, "model-seed", &v)) f->model_seed = std::stoull(v);
    else if (parse_flag(arg, "voxel-grid", &v)) f->voxel_grid = std::stoi(v);
    else if (parse_flag(arg, "gather-cov", &v)) f->gather_cov = std::stoi(v);
    else if (parse_flag(arg, "gather-noncov", &v)) f->gather_noncov = std::stoi(v);
    else if (parse_flag(arg, "k-cov", &v)) f->k_cov = std::stoi(v);
    else if (parse_flag(arg, "k-noncov", &v)) f->k_noncov = std::stoi(v);
    else if (parse_flag(arg, "workers", &v)) f->workers = std::stoi(v);
    else if (parse_flag(arg, "poses-per-batch", &v)) f->poses_per_batch = std::stoi(v);
    else if (parse_flag(arg, "ordered", &v)) f->ordered = std::stoi(v) != 0;
    else if (parse_flag(arg, "pipeline-depth", &v)) f->pipeline_depth = std::stoi(v);
    else if (parse_flag(arg, "pocket-cache", &v)) f->pocket_cache = std::stoi(v);
    else {
      std::fprintf(stderr, "score_server_node: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, &flags)) return 2;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Deterministic SG-CNN replica factory: weights are a pure function of
  // --model-seed and the shape flags, so every node (and every respawn of a
  // killed node) serves the identical model.
  df::chem::VoxelConfig voxel;
  voxel.grid_dim = flags.voxel_grid;
  df::serve::ModelRegistry registry;
  df::serve::add_regressor(
      registry, flags.scorer,
      [flags] {
        df::core::Rng rng(flags.model_seed);
        df::models::SgcnnConfig cfg;
        cfg.covalent_gather_width = flags.gather_cov;
        cfg.noncovalent_gather_width = flags.gather_noncov;
        cfg.covalent_k = flags.k_cov;
        cfg.noncovalent_k = flags.k_noncov;
        return std::make_unique<df::models::Sgcnn>(cfg, rng);
      },
      voxel);

  df::serve::ServiceConfig sc;
  sc.workers = flags.workers;
  sc.poses_per_batch = flags.poses_per_batch;
  sc.ordered_stream = flags.ordered;
  sc.pipeline_depth = std::max(0, flags.pipeline_depth);
  sc.pocket_cache_targets = static_cast<size_t>(std::max(0, flags.pocket_cache));
  df::serve::ScoringService service(registry, sc);
  service.warmup(flags.scorer);  // the paper's startup phase, before serving

  df::serve::ServerConfig server_cfg;
  server_cfg.port = flags.port;
  server_cfg.node_id = flags.node_id;
  std::unique_ptr<df::serve::ScoreServer> server;
  try {
    server = std::make_unique<df::serve::ScoreServer>(service, server_cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "score_server_node: %s\n", e.what());
    return 1;
  }

  // Port discovery handshake: write-then-rename so the parent never reads a
  // half-written file.
  if (!flags.port_file.empty()) {
    const std::string tmp = flags.port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "score_server_node: cannot write %s\n", tmp.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server->port());
    std::fclose(f);
    std::rename(tmp.c_str(), flags.port_file.c_str());
  }
  std::fprintf(stderr, "score_server_node: serving '%s' on port %d\n", flags.scorer.c_str(),
               server->port());

  while (!server->shutdown_requested() && !g_signalled.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "score_server_node: shutting down (port %d)\n", server->port());
  server->stop();
  return 0;
}
