// ScoringService / ModelRegistry pins: batch scoring must equal per-pose
// scoring for every model family, ordered-stream mode must be bitwise
// deterministic at any worker count with any number of concurrent clients,
// the bounded queue must apply backpressure (or fail fast, typed), and the
// campaign must produce identical reports whether it builds its own service
// (ModelFactory compatibility path) or runs as a client of an external one.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign_test_utils.h"
#include "chem/conformer.h"
#include "data/target.h"
#include "models/cnn3d.h"
#include "models/fusion.h"
#include "models/sgcnn.h"
#include "serve/service.h"

namespace df {
namespace {

using core::Rng;

constexpr float kTol = 1e-4f;

// ---- fixtures -----------------------------------------------------------

chem::VoxelConfig tiny_voxel() {
  chem::VoxelConfig cfg;
  cfg.grid_dim = 8;
  return cfg;
}

models::Cnn3dConfig tiny_cnn_cfg() {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  return cfg;
}

models::SgcnnConfig tiny_sg_cfg() {
  models::SgcnnConfig cfg;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 16;
  return cfg;
}

std::vector<serve::PoseInput> make_poses(int n, const std::vector<chem::Atom>* pocket,
                                         Rng& rng) {
  std::vector<serve::PoseInput> poses;
  poses.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = pocket;
    poses.push_back(std::move(p));
  }
  return poses;
}

/// The four model families of the paper, as tiny deterministic factories.
std::vector<std::pair<std::string, models::RegressorFactory>> family_factories() {
  return {
      {"cnn3d",
       [] {
         Rng rng(41);
         return std::make_unique<models::Cnn3d>(tiny_cnn_cfg(), rng);
       }},
      {"sgcnn",
       [] {
         Rng rng(42);
         return std::make_unique<models::Sgcnn>(tiny_sg_cfg(), rng);
       }},
      {"fusion",
       [] {
         Rng rng(43);
         auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(), rng);
         auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
         models::FusionConfig fcfg;
         fcfg.kind = models::FusionKind::Mid;
         fcfg.model_specific_layers = true;
         fcfg.fusion_nodes = 12;
         return std::make_unique<models::FusionModel>(fcfg, cnn, sg, rng);
       }},
      {"late_fusion",
       [] {
         Rng rng(44);
         auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(), rng);
         auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
         return std::make_unique<models::LateFusion>(std::move(cnn), std::move(sg));
       }},
  };
}

serve::ModelRegistry family_registry() {
  serve::ModelRegistry reg;
  for (auto& [name, factory] : family_factories()) {
    serve::add_regressor(reg, name, factory, tiny_voxel());
  }
  return reg;
}

// Test doubles: a scorer that blocks on an external gate (queue-shape
// control) and one that always throws (typed-error path).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

class GatedScorer : public serve::Scorer {
 public:
  explicit GatedScorer(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}
  std::string name() const override { return "gated"; }
  std::vector<float> score(const std::vector<const serve::PoseInput*>& poses) override {
    gate_->wait();
    return std::vector<float>(poses.size(), 1.0f);
  }

 private:
  std::shared_ptr<Gate> gate_;
};

class ThrowingScorer : public serve::Scorer {
 public:
  std::string name() const override { return "throwing"; }
  std::vector<float> score(const std::vector<const serve::PoseInput*>&) override {
    throw std::runtime_error("boom: model exploded");
  }
};

// ---- registry -----------------------------------------------------------

TEST(Registry, RegisterMakeContainsNames) {
  serve::ModelRegistry reg = family_registry();
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_TRUE(reg.contains("cnn3d"));
  EXPECT_FALSE(reg.contains("vina_pk"));
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "cnn3d");  // sorted
  auto scorer = reg.make("sgcnn");
  ASSERT_NE(scorer, nullptr);
  EXPECT_EQ(scorer->name(), "sgcnn");
}

TEST(Registry, DuplicateRegistrationThrows) {
  serve::ModelRegistry reg;
  reg.add("x", [] { return std::make_unique<serve::VinaPkScorer>(); });
  EXPECT_THROW(reg.add("x", [] { return std::make_unique<serve::VinaPkScorer>(); }),
               std::invalid_argument);
}

TEST(Registry, UnknownMakeThrows) {
  serve::ModelRegistry reg;
  EXPECT_THROW(reg.make("nope"), std::out_of_range);
}

TEST(Registry, DefaultRegistryServesEveryBackendFamily) {
  Rng rng(9);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  serve::ModelRegistry reg = serve::default_registry(tiny_voxel());
  serve::ServiceConfig sc;
  sc.workers = 2;
  serve::ScoringService service(reg, sc);
  for (const std::string& name : reg.names()) {
    serve::ScoreRequest req;
    req.scorer = name;
    req.poses = make_poses(2, &pocket, rng);
    const serve::ScoreResponse resp = service.score(std::move(req));
    ASSERT_EQ(resp.error, serve::ScoreError::kNone) << name << ": " << resp.message;
    ASSERT_EQ(resp.scores.size(), 2u) << name;
    for (float s : resp.scores) EXPECT_TRUE(std::isfinite(s)) << name;
  }
}

// ---- batch ≡ per-pose ---------------------------------------------------

TEST(BatchEquivalence, RandomizedBatchesMatchPerPoseForAllFamilies) {
  Rng rng(31);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto poses = make_poses(11, &pocket, rng);

  const chem::Voxelizer voxelizer(tiny_voxel());
  const chem::GraphFeaturizer featurizer{chem::GraphFeaturizerConfig{}};
  std::vector<data::Sample> samples;
  for (const auto& p : poses) {
    data::Sample s;
    s.voxel = voxelizer.voxelize(p.ligand, *p.pocket, p.site_center);
    s.graph = featurizer.featurize(p.ligand, *p.pocket);
    samples.push_back(std::move(s));
  }

  for (auto& [name, factory] : family_factories()) {
    auto model = factory();
    model->set_training(false);
    std::vector<float> single;
    for (const auto& s : samples) single.push_back(model->predict(s));
    // Random partitions of the pose set, several rounds: every batch shape
    // must reproduce the per-pose predictions.
    for (int round = 0; round < 3; ++round) {
      size_t i = 0;
      while (i < samples.size()) {
        const size_t width = 1 + rng.randint(0, 4);
        const size_t end = std::min(samples.size(), i + width);
        std::vector<const data::Sample*> batch;
        for (size_t j = i; j < end; ++j) batch.push_back(&samples[j]);
        const std::vector<float> preds = model->predict_batch(batch);
        ASSERT_EQ(preds.size(), end - i);
        for (size_t j = i; j < end; ++j) {
          EXPECT_NEAR(preds[j - i], single[j], kTol)
              << name << " pose " << j << " batch width " << (end - i);
        }
        i = end;
      }
    }
  }
}

TEST(BatchEquivalence, ServiceMatchesDirectScorer) {
  Rng rng(32);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 3;
  sc.poses_per_batch = 4;  // force multi-batch requests
  serve::ScoringService service(reg, sc);
  for (const std::string& name : {std::string("cnn3d"), std::string("fusion")}) {
    auto reference = reg.make(name);
    serve::ScoreRequest req;
    req.scorer = name;
    req.poses = make_poses(9, &pocket, rng);
    std::vector<float> expected;
    for (const auto& p : req.poses) {
      const serve::PoseInput* ptr = &p;
      expected.push_back(reference->score({ptr})[0]);
    }
    const serve::ScoreResponse resp = service.score(std::move(req));
    ASSERT_EQ(resp.error, serve::ScoreError::kNone) << resp.message;
    ASSERT_EQ(resp.scores.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(resp.scores[i], expected[i], kTol) << name << " pose " << i;
    }
  }
}

// ---- determinism --------------------------------------------------------

TEST(OrderedStream, BitIdenticalAcrossWorkerCountsAndConcurrentClients) {
  Rng rng(33);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  constexpr int kClients = 3;
  std::vector<std::vector<serve::PoseInput>> client_poses;
  for (int c = 0; c < kClients; ++c) client_poses.push_back(make_poses(10, &pocket, rng));

  // cnn3d runs one batched trunk per micro-batch, so chunk boundaries feed
  // the floating-point path — exactly what ordered-stream mode pins down.
  const auto run_config = [&](int workers) {
    serve::ModelRegistry reg = family_registry();
    serve::ServiceConfig sc;
    sc.workers = workers;
    sc.poses_per_batch = 4;  // 10-pose requests split 4/4/2
    sc.ordered_stream = true;
    serve::ScoringService service(reg, sc);
    std::vector<std::vector<float>> scores(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        serve::ScoreRequest req;
        req.scorer = "cnn3d";
        req.client = "client" + std::to_string(c);
        req.poses = client_poses[static_cast<size_t>(c)];
        scores[static_cast<size_t>(c)] = service.score(std::move(req)).scores;
      });
    }
    for (auto& t : clients) t.join();
    return scores;
  };

  const auto narrow = run_config(1);
  const auto wide = run_config(4);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(narrow[static_cast<size_t>(c)].size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      // EXPECT_EQ on floats is exact — bitwise for finite values.
      EXPECT_EQ(narrow[static_cast<size_t>(c)][i], wide[static_cast<size_t>(c)][i])
          << "client " << c << " pose " << i;
    }
  }
}

// ---- batching / queue behavior ------------------------------------------

TEST(Service, CoalescesSmallRequestsAcrossClients) {
  Rng rng(34);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.poses_per_batch = 8;
  sc.flush_deadline_ms = 200.0;  // generous window: the 4 submits land inside it
  serve::ScoringService service(reg, sc);

  std::vector<std::future<serve::ScoreResponse>> futures;
  for (int c = 0; c < 4; ++c) {
    serve::ScoreRequest req;
    req.scorer = "sgcnn";
    req.poses = make_poses(2, &pocket, rng);
    futures.push_back(service.submit(std::move(req)));
  }
  bool any_coalesced = false;
  for (auto& f : futures) {
    const serve::ScoreResponse resp = f.get();
    ASSERT_EQ(resp.error, serve::ScoreError::kNone) << resp.message;
    EXPECT_EQ(resp.scores.size(), 2u);
    any_coalesced = any_coalesced || resp.coalesced;
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_TRUE(any_coalesced);
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_LT(stats.batches, 4u);  // strictly fewer batches than requests
}

TEST(Service, BackpressureBlocksSubmitUntilSpace) {
  auto gate = std::make_shared<Gate>();
  serve::ModelRegistry reg;
  reg.add("gated", [gate] { return std::make_unique<GatedScorer>(gate); });
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.poses_per_batch = 4;
  sc.queue_capacity = 4;
  sc.block_when_full = true;
  serve::ScoringService service(reg, sc);

  const auto request = [&](int n) {
    serve::ScoreRequest req;
    req.scorer = "gated";
    req.poses.resize(static_cast<size_t>(n));  // GatedScorer ignores content
    return req;
  };
  auto fa = service.submit(request(4));  // dispatches, blocks in the gate
  auto fb = service.submit(request(4));  // fills the queue
  std::atomic<bool> c_accepted{false};
  std::future<serve::ScoreResponse> fc;
  std::thread blocked([&] {
    fc = service.submit(request(3));  // must block: 4 queued + 3 > capacity
    c_accepted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(c_accepted.load());  // backpressure held the submitter

  gate->release();
  blocked.join();
  EXPECT_TRUE(c_accepted.load());
  for (auto* f : {&fa, &fb, &fc}) {
    const serve::ScoreResponse resp = f->get();
    ASSERT_EQ(resp.error, serve::ScoreError::kNone) << resp.message;
    for (float s : resp.scores) EXPECT_EQ(s, 1.0f);
  }
}

TEST(Service, FailFastReturnsTypedQueueFull) {
  auto gate = std::make_shared<Gate>();
  serve::ModelRegistry reg;
  reg.add("gated", [gate] { return std::make_unique<GatedScorer>(gate); });
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.poses_per_batch = 4;
  sc.queue_capacity = 4;
  sc.block_when_full = false;
  serve::ScoringService service(reg, sc);

  const auto request = [&](int n) {
    serve::ScoreRequest req;
    req.scorer = "gated";
    req.poses.resize(static_cast<size_t>(n));
    return req;
  };
  auto fa = service.submit(request(4));
  // Wait until the worker holds batch A in flight, so B definitely queues.
  while (service.stats().batches < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto fb = service.submit(request(4));
  const serve::ScoreResponse rejected = service.score(request(1));
  EXPECT_EQ(rejected.error, serve::ScoreError::kQueueFull);
  EXPECT_TRUE(rejected.scores.empty());

  gate->release();
  EXPECT_EQ(fa.get().error, serve::ScoreError::kNone);
  EXPECT_EQ(fb.get().error, serve::ScoreError::kNone);
  EXPECT_GE(service.stats().rejected, 1u);
}

// ---- typed errors -------------------------------------------------------

TEST(Service, UnknownScorerIsTypedNotThrown) {
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 1;
  serve::ScoringService service(reg, sc);
  serve::ScoreRequest req;
  req.scorer = "not_registered";
  req.poses.resize(1);
  const serve::ScoreResponse resp = service.score(std::move(req));
  EXPECT_EQ(resp.error, serve::ScoreError::kUnknownScorer);
  EXPECT_NE(resp.message.find("not_registered"), std::string::npos);
  EXPECT_STREQ(serve::score_error_name(resp.error), "unknown_scorer");
}

TEST(Service, ScorerExceptionBecomesTypedFailureAndServiceSurvives) {
  Rng rng(35);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  serve::ModelRegistry reg;
  reg.add("throwing", [] { return std::make_unique<ThrowingScorer>(); });
  serve::add_regressor(reg, "sgcnn", family_factories()[1].second, tiny_voxel());
  serve::ServiceConfig sc;
  sc.workers = 2;
  serve::ScoringService service(reg, sc);

  serve::ScoreRequest bad;
  bad.scorer = "throwing";
  bad.poses.resize(3);
  const serve::ScoreResponse failed = service.score(std::move(bad));
  EXPECT_EQ(failed.error, serve::ScoreError::kScorerFailure);
  EXPECT_NE(failed.message.find("boom"), std::string::npos);

  serve::ScoreRequest good;
  good.scorer = "sgcnn";
  good.poses = make_poses(2, &pocket, rng);
  const serve::ScoreResponse ok = service.score(std::move(good));
  EXPECT_EQ(ok.error, serve::ScoreError::kNone) << ok.message;
  EXPECT_EQ(ok.scores.size(), 2u);
}

TEST(Service, ShutdownRejectsNewWorkTyped) {
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 1;
  serve::ScoringService service(reg, sc);
  service.shutdown();
  serve::ScoreRequest req;
  req.scorer = "cnn3d";
  req.poses.resize(1);
  const serve::ScoreResponse resp = service.score(std::move(req));
  EXPECT_EQ(resp.error, serve::ScoreError::kShutdown);
}

TEST(Service, EmptyRequestResolvesImmediately) {
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 1;
  serve::ScoringService service(reg, sc);
  serve::ScoreRequest req;
  req.scorer = "cnn3d";
  const serve::ScoreResponse resp = service.score(std::move(req));
  EXPECT_EQ(resp.error, serve::ScoreError::kNone);
  EXPECT_TRUE(resp.scores.empty());
}

TEST(Service, NullPocketIsTypedFailureNotACrash) {
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 1;
  serve::ScoringService service(reg, sc);
  serve::ScoreRequest req;
  req.scorer = "sgcnn";
  req.poses.resize(2);  // pocket pointers left null
  const serve::ScoreResponse resp = service.score(std::move(req));
  EXPECT_EQ(resp.error, serve::ScoreError::kScorerFailure);
  EXPECT_NE(resp.message.find("null pocket"), std::string::npos);
}

TEST(Service, ThrowingFactoryFailsWarmupCleanly) {
  serve::ModelRegistry reg = family_registry();
  reg.add("bad_factory", []() -> std::unique_ptr<serve::Scorer> {
    throw std::runtime_error("factory kaboom");
  });
  serve::ServiceConfig sc;
  sc.workers = 2;
  serve::ScoringService service(reg, sc);
  EXPECT_THROW(service.warmup("bad_factory"), std::runtime_error);
  // The workers survive a throwing factory; real scorers still serve.
  service.warmup("sgcnn");
  serve::ScoreRequest req;
  req.scorer = "bad_factory";
  req.poses.resize(1);
  EXPECT_EQ(service.score(std::move(req)).error, serve::ScoreError::kScorerFailure);
}

TEST(ServiceJob, ScorerFailureSurfacesAsExceptionWithoutPool) {
  // A rank client that gets a typed service error throws; with no shared
  // pool the job must still surface that as an exception at the join
  // instead of std::terminate-ing from a raw thread.
  Rng rng(36);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  serve::ModelRegistry reg;
  reg.add("throwing", [] { return std::make_unique<ThrowingScorer>(); });
  serve::ServiceConfig sc;
  sc.workers = 1;
  serve::ScoringService service(reg, sc);
  std::vector<screen::PoseWorkItem> items;
  for (const auto& pose : make_poses(4, &pocket, rng)) {
    screen::PoseWorkItem item;
    item.ligand = pose.ligand;
    item.pocket = pose.pocket;
    items.push_back(std::move(item));
  }
  screen::JobConfig jc;
  jc.nodes = 1;
  jc.gpus_per_node = 2;
  jc.pool = nullptr;
  EXPECT_THROW(screen::FusionScoringJob(jc).run(items, service, "throwing"),
               std::runtime_error);
}

// ---- warmup / replicas --------------------------------------------------

TEST(Service, WarmupBuildsOneReplicaPerWorker) {
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 3;
  serve::ScoringService service(reg, sc);
  service.warmup("sgcnn");
  EXPECT_EQ(service.stats().replicas_built, 3u);
  service.warmup("sgcnn");  // replicas are cached, not rebuilt
  EXPECT_EQ(service.stats().replicas_built, 3u);
  EXPECT_THROW(service.warmup("nope"), std::out_of_range);
}

// ---- campaign as a service client ---------------------------------------

TEST(ServiceCampaign, ExplicitServiceMatchesFactoryPathBitwise) {
  Rng rng(21);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Protease1, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::ZINC, 4), rng);
  screen::CampaignConfig cfg = screen::testutil::tiny_campaign();

  const screen::CampaignReport via_factory =
      screen::ScreeningCampaign(cfg, targets).run(compounds, screen::testutil::tiny_sg_factory());

  serve::ModelRegistry reg;
  serve::add_regressor(reg, "sg", screen::testutil::tiny_sg_factory(), cfg.job.voxel,
                       cfg.job.graph);
  serve::ServiceConfig sc;
  sc.workers = 3;  // any worker count: ordered-stream mode pins the bits
  sc.poses_per_batch = cfg.job.poses_per_batch;
  sc.ordered_stream = true;
  serve::ScoringService service(reg, sc);
  const screen::CampaignReport via_service =
      screen::ScreeningCampaign(cfg, targets).run(compounds, service, "sg");

  screen::testutil::expect_reports_bitwise_equal(via_factory, via_service);
}

TEST(ServiceCampaign, ResumeRejectsChangedScoringBatchSize) {
  // Micro-batch boundaries feed floating-point summation order, so a
  // checkpoint written under one poses_per_batch must refuse to resume
  // under another — mixing recovered and re-scored bits would silently
  // break the bit-identical guarantee.
  Rng rng(22);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Spike1, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::ZINC, 3), rng);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "df_service_batch_guard").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  screen::CampaignConfig cfg = screen::testutil::tiny_campaign();
  cfg.output_prefix = dir + "/screen";
  cfg.checkpoint_path = dir + "/campaign.ckpt";

  serve::ModelRegistry reg;
  serve::add_regressor(reg, "sg", screen::testutil::tiny_sg_factory(), cfg.job.voxel,
                       cfg.job.graph);
  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.poses_per_batch = cfg.job.poses_per_batch;
  sc.ordered_stream = true;
  {
    serve::ScoringService service(reg, sc);
    screen::ScreeningCampaign(cfg, targets).run(compounds, service, "sg");
  }
  sc.poses_per_batch = cfg.job.poses_per_batch / 2;  // changed boundaries
  serve::ScoringService mismatched(reg, sc);
  EXPECT_THROW(screen::ScreeningCampaign(cfg, targets).run(compounds, mismatched, "sg"),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

// ---- deadlines (S1) -----------------------------------------------------

TEST(ServiceDeadline, BoundsBackpressureBlock) {
  auto gate = std::make_shared<Gate>();
  serve::ModelRegistry reg;
  reg.add("gated", [gate] { return std::make_unique<GatedScorer>(gate); });
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.poses_per_batch = 4;
  sc.queue_capacity = 4;
  sc.block_when_full = true;
  serve::ScoringService service(reg, sc);

  const auto request = [&](int n, double deadline_ms) {
    serve::ScoreRequest req;
    req.scorer = "gated";
    req.poses.resize(static_cast<size_t>(n));
    req.deadline_ms = deadline_ms;
    return req;
  };
  auto fa = service.submit(request(4, 0));  // dispatches, blocks in the gate
  auto fb = service.submit(request(4, 0));  // fills the queue
  // Queue full, worker wedged: without a deadline this submit would block
  // until the gate opens. With one, it must come back kTimeout on its own.
  const auto t0 = std::chrono::steady_clock::now();
  auto fc = service.submit(request(3, 50));
  const serve::ScoreResponse timed_out = fc.get();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(timed_out.error, serve::ScoreError::kTimeout) << timed_out.message;
  EXPECT_TRUE(timed_out.scores.empty());
  EXPECT_LT(waited_ms, 5000.0) << "deadline did not bound the backpressure block";

  gate->release();
  EXPECT_EQ(fa.get().error, serve::ScoreError::kNone);
  EXPECT_EQ(fb.get().error, serve::ScoreError::kNone);
  EXPECT_GE(service.stats().timeouts, 1u);
}

TEST(ServiceDeadline, QueuedRequestPastDeadlineResolvesTimeout) {
  auto gate = std::make_shared<Gate>();
  serve::ModelRegistry reg;
  reg.add("gated", [gate] { return std::make_unique<GatedScorer>(gate); });
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.poses_per_batch = 4;
  sc.ordered_stream = true;  // never coalesce the blocker with the late request
  serve::ScoringService service(reg, sc);

  serve::ScoreRequest blocker;
  blocker.scorer = "gated";
  blocker.poses.resize(2);
  auto fa = service.submit(std::move(blocker));  // wedges the single worker
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it dispatch

  serve::ScoreRequest late;
  late.scorer = "gated";
  late.poses.resize(2);
  late.deadline_ms = 30;
  auto fb = service.submit(std::move(late));  // queues behind it

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  gate->release();  // worker sweeps expired requests before dispatching more
  EXPECT_EQ(fa.get().error, serve::ScoreError::kNone);
  const serve::ScoreResponse resp = fb.get();
  EXPECT_EQ(resp.error, serve::ScoreError::kTimeout) << resp.message;
  EXPECT_GE(service.stats().timeouts, 1u);
}

TEST(ServiceDeadline, GenerousDeadlineDoesNotFireOnHealthyPath) {
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.poses_per_batch = 4;
  serve::ScoringService service(reg, sc);

  Rng rng(71);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  serve::ScoreRequest req;
  req.scorer = "sgcnn";
  req.poses = make_poses(3, &pocket, rng);
  req.deadline_ms = 60'000;
  const serve::ScoreResponse resp = service.score(std::move(req));
  EXPECT_EQ(resp.error, serve::ScoreError::kNone) << resp.message;
  EXPECT_EQ(resp.scores.size(), 3u);
  EXPECT_EQ(service.stats().timeouts, 0u);
}

// ---- latency surface (S2) -----------------------------------------------

TEST(ServiceStatsPins, LatencyHistogramCountsEveryResolvedRequest) {
  serve::ModelRegistry reg = family_registry();
  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.poses_per_batch = 4;
  serve::ScoringService service(reg, sc);

  Rng rng(72);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  for (int i = 0; i < 4; ++i) {
    serve::ScoreRequest req;
    req.scorer = "sgcnn";
    req.poses = make_poses(2, &pocket, rng);
    ASSERT_EQ(service.score(std::move(req)).error, serve::ScoreError::kNone);
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.latency.count(), 4u);
  EXPECT_GT(stats.latency.p50_ms(), 0.0);
  EXPECT_GE(stats.latency.p99_ms(), stats.latency.p50_ms());
}

TEST(ServiceStatsPins, LatencyHistogramSurvivesPathologicalDurations) {
  // float-to-integer conversion of NaN/inf/past-2^64-µs doubles is UB; a
  // wedged upstream clock can produce all of them. record_seconds must
  // clamp first: non-positives and NaN land in bucket 0, oversized
  // durations saturate into the last bucket, and every sample is counted.
  serve::LatencyHistogram h;
  h.record_seconds(std::numeric_limits<double>::quiet_NaN());
  h.record_seconds(std::numeric_limits<double>::infinity());
  h.record_seconds(-std::numeric_limits<double>::infinity());
  h.record_seconds(std::numeric_limits<double>::max());
  h.record_seconds(1e30);   // * 1e6 overflows uint64_t without the clamp
  h.record_seconds(1e13);   // just at the clamp threshold
  h.record_seconds(-1.0);
  h.record_seconds(0.0);
  h.record_seconds(5e-7);   // sub-microsecond: bucket 0
  EXPECT_EQ(h.count(), 9u);
  // NaN, -inf, -1, 0, 5e-7 → bucket 0; inf, max, 1e30, 1e13 → last bucket.
  EXPECT_EQ(h.bucket_count(0), 5u);
  EXPECT_EQ(h.bucket_count(serve::LatencyHistogram::kBuckets - 1), 4u);
  // Percentiles stay finite and ordered even on this degenerate input.
  EXPECT_GE(h.p99_ms(), h.p50_ms());
  EXPECT_EQ(h.p99_ms(), serve::LatencyHistogram::bucket_upper_ms(
                            serve::LatencyHistogram::kBuckets - 1));

  // Ordinary samples still land where the power-of-two bucketing says:
  // 1 ms = 1000 µs → bit_width 10, upper bound 1.024 ms.
  serve::LatencyHistogram ok;
  ok.record_seconds(1e-3);
  EXPECT_EQ(ok.bucket_count(10), 1u);
  EXPECT_EQ(ok.p50_ms(), serve::LatencyHistogram::bucket_upper_ms(10));
}

// ---- shutdown races (S3: the TSan targets) ------------------------------

// A fast scorer for the race hammers: no gate, no throw, just an answer.
class EchoScorer : public serve::Scorer {
 public:
  std::string name() const override { return "echo"; }
  std::vector<float> score(const std::vector<const serve::PoseInput*>& poses) override {
    return std::vector<float>(poses.size(), 0.5f);
  }
};

TEST(ServiceShutdownRace, ConcurrentSubmittersAllResolveTyped) {
  // Hammer shutdown() against racing submitters: every future must resolve
  // (kNone for accepted work, kShutdown for late arrivals), nothing hangs,
  // nothing crashes. This is the suite the TSan CI job watches.
  for (int round = 0; round < 5; ++round) {
    serve::ModelRegistry reg;
    reg.add("echo", [] { return std::make_unique<EchoScorer>(); });
    serve::ServiceConfig sc;
    sc.workers = 2;
    sc.poses_per_batch = 4;
    serve::ScoringService service(reg, sc);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::future<serve::ScoreResponse>> futures(
        static_cast<size_t>(kThreads * kPerThread));
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          serve::ScoreRequest req;
          req.scorer = "echo";
          req.poses.resize(2);
          futures[static_cast<size_t>(t * kPerThread + i)] = service.submit(std::move(req));
        }
      });
    }
    service.shutdown();  // races the submitters by design
    for (auto& th : submitters) th.join();

    size_t ok = 0, refused = 0;
    for (auto& f : futures) {
      ASSERT_TRUE(f.valid());
      const serve::ScoreResponse resp = f.get();
      if (resp.error == serve::ScoreError::kNone) {
        ASSERT_EQ(resp.scores.size(), 2u);
        ++ok;
      } else {
        ASSERT_EQ(resp.error, serve::ScoreError::kShutdown);
        ++refused;
      }
    }
    EXPECT_EQ(ok + refused, futures.size());
  }
}

TEST(ServiceShutdownRace, DrainRacesSubmittersWithoutLosingWork) {
  serve::ModelRegistry reg;
  reg.add("echo", [] { return std::make_unique<EchoScorer>(); });
  serve::ServiceConfig sc;
  sc.workers = 2;
  sc.poses_per_batch = 4;
  serve::ScoringService service(reg, sc);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepted{0};
  std::thread submitter([&] {
    while (!stop.load()) {
      serve::ScoreRequest req;
      req.scorer = "echo";
      req.poses.resize(1);
      auto f = service.submit(std::move(req));
      if (f.get().error == serve::ScoreError::kNone) accepted.fetch_add(1);
    }
  });
  // drain() must tolerate live traffic; keep draining until real requests
  // have demonstrably flowed through the race window (bounded by a clock,
  // not a count — drain() on a briefly-empty service returns in nanoseconds).
  const auto race_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (accepted.load() < 20 && std::chrono::steady_clock::now() < race_deadline) {
    service.drain();
  }
  stop.store(true);
  submitter.join();
  EXPECT_GE(accepted.load(), 20u);
}

}  // namespace
}  // namespace df
