// Neighbor-search pins for the chem::CellList engine (ROADMAP item 4):
//   * gather() is a sorted superset of the in-radius set; knearest() matches
//     the full (distance, index) sort exactly, ties included,
//   * the cell-list and brute-force featurizer paths produce bitwise
//     identical graphs — node features, both edge lists, crop order — across
//     random geometries and cutoff boundary cases (atom exactly at the
//     threshold, far off-grid atoms, empty pocket, single atom),
//   * all MM-GBSA terms (LJ, GB with a finite cutoff, SA, electrostatics)
//     and the full mmgbsa_score pipeline are bitwise identical on both
//     paths, and elec_energy reproduces score_terms().electrostatic bit for
//     bit (the minimizer-objective bugfix rests on this),
//   * outputs are bitwise independent of compute-pool thread count,
//   * the pocket crop breaks distance ties by index (symmetric pockets),
//   * feature_set_version wiring: v1 stays bitwise-pinned next to v2, v2
//     adds the H-bond channels/degrees, and mismatched versions are
//     rejected by the scorer, the registry, and voxelize_ligand_onto.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chem/cell_list.h"
#include "chem/conformer.h"
#include "chem/graph_featurizer.h"
#include "chem/hbond.h"
#include "chem/smiles.h"
#include "chem/voxelizer.h"
#include "compile/model_compiler.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "core/threadpool.h"
#include "data/target.h"
#include "dock/mmgbsa.h"
#include "dock/scoring.h"
#include "models/cnn3d.h"
#include "serve/registry.h"
#include "serve/scorer.h"

namespace df {
namespace {

using core::Rng;
using core::Tensor;
using core::Vec3;

std::vector<Vec3> random_points(Rng& rng, int n, float extent) {
  std::vector<Vec3> pts(static_cast<size_t>(n));
  for (Vec3& p : pts) {
    p = {(rng.uniform() - 0.5f) * extent, (rng.uniform() - 0.5f) * extent,
         (rng.uniform() - 0.5f) * extent};
  }
  return pts;
}

chem::Molecule random_ligand(Rng& rng) {
  chem::Molecule m = chem::generate_molecule({}, rng);
  chem::embed_conformer(m, rng);
  return m;
}

std::vector<chem::Atom> random_pocket(Rng& rng, int n, float radius = 7.0f) {
  data::PocketConfig pc;
  pc.num_atoms = n;
  pc.radius = radius;
  return data::make_pocket(pc, rng);
}

void expect_tensor_bitwise(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.numel()) * sizeof(float)));
}

void expect_graph_bitwise(const graph::SpatialGraph& a, const graph::SpatialGraph& b) {
  EXPECT_EQ(a.num_ligand_nodes, b.num_ligand_nodes);
  expect_tensor_bitwise(a.node_features, b.node_features);
  EXPECT_EQ(a.covalent.src, b.covalent.src);
  EXPECT_EQ(a.covalent.dst, b.covalent.dst);
  EXPECT_EQ(a.noncovalent.src, b.noncovalent.src);
  EXPECT_EQ(a.noncovalent.dst, b.noncovalent.dst);
  EXPECT_EQ(a.noncovalent_features.empty(), b.noncovalent_features.empty());
  if (!a.noncovalent_features.empty()) {
    expect_tensor_bitwise(a.noncovalent_features, b.noncovalent_features);
  }
}

// ---- CellList unit pins --------------------------------------------------

TEST(CellList, GatherIsSortedSupersetOfRadius) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<Vec3> pts = random_points(rng, 200, 30.0f);
    chem::CellList cells;
    const float r = 5.0f;
    cells.build(pts.data(), static_cast<int32_t>(pts.size()), r);
    std::vector<int32_t> got;
    for (int probe = 0; probe < 20; ++probe) {
      const Vec3 p = {(rng.uniform() - 0.5f) * 40.0f, (rng.uniform() - 0.5f) * 40.0f,
                      (rng.uniform() - 0.5f) * 40.0f};
      cells.gather(p, got);
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
      for (size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].dist(p) <= r) {
          EXPECT_TRUE(std::binary_search(got.begin(), got.end(), static_cast<int32_t>(i)))
              << "atom " << i << " within radius missing from gather";
        }
      }
    }
  }
}

TEST(CellList, KNearestMatchesFullSortWithIndexTieBreak) {
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<Vec3> pts = random_points(rng, 150, 25.0f);
    chem::CellList cells;
    cells.build(pts.data(), static_cast<int32_t>(pts.size()), 4.0f);
    const Vec3 p = {(rng.uniform() - 0.5f) * 25.0f, (rng.uniform() - 0.5f) * 25.0f,
                    (rng.uniform() - 0.5f) * 25.0f};
    for (int k : {1, 7, 64, 150}) {
      std::vector<int32_t> got;
      cells.knearest(p, k, got);
      std::vector<std::pair<float, int32_t>> ref(pts.size());
      for (size_t i = 0; i < pts.size(); ++i) ref[i] = {pts[i].dist(p), static_cast<int32_t>(i)};
      std::sort(ref.begin(), ref.end());
      ASSERT_EQ(got.size(), static_cast<size_t>(k));
      for (int i = 0; i < k; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], ref[static_cast<size_t>(i)].second);
    }
  }
}

TEST(CellList, EmptyAndSingleAtom) {
  chem::CellList cells;
  cells.build(nullptr, 0, 3.0f);
  std::vector<int32_t> got{99};
  cells.gather({0, 0, 0}, got);
  EXPECT_TRUE(got.empty());
  cells.knearest({0, 0, 0}, 4, got);
  EXPECT_TRUE(got.empty());

  const Vec3 one{1, 2, 3};
  cells.build(&one, 1, 3.0f);
  cells.gather({1, 2, 3}, got);
  EXPECT_EQ(got, (std::vector<int32_t>{0}));
  cells.knearest({100, 100, 100}, 5, got);  // probe far off-grid, k > n
  EXPECT_EQ(got, (std::vector<int32_t>{0}));
  EXPECT_THROW(cells.build(&one, 1, 0.0f), std::invalid_argument);
}

// ---- featurizer: cell list vs brute force --------------------------------

chem::GraphFeaturizerConfig brute(chem::GraphFeaturizerConfig cfg) {
  cfg.use_cell_list = false;
  return cfg;
}

TEST(CellListFeaturize, GraphBitwiseAcrossRandomGeometries) {
  Rng rng(21);
  for (int trial = 0; trial < 6; ++trial) {
    chem::Molecule lig = random_ligand(rng);
    const std::vector<chem::Atom> pocket = random_pocket(rng, 40 + trial * 60);
    for (int v : {1, 2}) {
      chem::GraphFeaturizerConfig cfg;
      cfg.feature_set_version = v;
      cfg.cell_list_min_atoms = 0;  // test sizes sit below the perf threshold
      const graph::SpatialGraph a = chem::GraphFeaturizer(cfg).featurize(lig, pocket);
      const graph::SpatialGraph b = chem::GraphFeaturizer(brute(cfg)).featurize(lig, pocket);
      expect_graph_bitwise(a, b);
    }
  }
}

TEST(CellListFeaturize, CutoffBoundaryAndDegenerateGeometries) {
  Rng rng(22);
  chem::Molecule lig = random_ligand(rng);
  lig.translate(Vec3{} - lig.centroid());
  chem::GraphFeaturizerConfig cfg;
  cfg.cell_list_min_atoms = 0;  // force the engine at these tiny sizes

  // Pocket atoms exactly at the two thresholds from a ligand atom, plus
  // far off-grid outliers and a coincident-position pair.
  const Vec3 a0 = lig.atoms()[0].pos;
  std::vector<chem::Atom> pocket;
  pocket.push_back({chem::Element::O, a0 + Vec3{cfg.noncovalent_threshold, 0, 0}, 0, false, 1});
  pocket.push_back({chem::Element::N, a0 + Vec3{0, cfg.covalent_threshold, 0}, 0, false, 1});
  pocket.push_back({chem::Element::C, a0 + Vec3{0, 0, 500.0f}});   // far off-grid
  pocket.push_back({chem::Element::C, a0 - Vec3{400.0f, 0, 0}});   // far off-grid
  pocket.push_back({chem::Element::S, a0 + Vec3{3.0f, 0, 0}});
  pocket.push_back({chem::Element::S, a0 + Vec3{3.0f, 0, 0}});     // coincident pair
  for (int v : {1, 2}) {
    chem::GraphFeaturizerConfig vcfg = cfg;
    vcfg.feature_set_version = v;
    expect_graph_bitwise(chem::GraphFeaturizer(vcfg).featurize(lig, pocket),
                         chem::GraphFeaturizer(brute(vcfg)).featurize(lig, pocket));
  }

  // Empty pocket and single-atom pocket.
  expect_graph_bitwise(chem::GraphFeaturizer(cfg).featurize(lig, {}),
                       chem::GraphFeaturizer(brute(cfg)).featurize(lig, {}));
  std::vector<chem::Atom> single{chem::Atom{chem::Element::O, a0 + Vec3{4, 0, 0}, 0, false, 1}};
  expect_graph_bitwise(chem::GraphFeaturizer(cfg).featurize(lig, single),
                       chem::GraphFeaturizer(brute(cfg)).featurize(lig, single));
}

TEST(CellListFeaturize, SymmetricPocketCropBreaksTiesByIndex) {
  // Eight pocket atoms all at the same distance from the ligand centroid:
  // the crop must keep the lowest indices, on both paths. The first four
  // are oxygens, the mirrored four nitrogens — element one-hots reveal
  // which made the cut.
  chem::Molecule lig;
  lig.add_atom(chem::Element::C, {0, 0, 0});
  const float d = 4.0f;
  std::vector<chem::Atom> pocket;
  pocket.push_back({chem::Element::O, {d, 0, 0}, 0, false, 1});
  pocket.push_back({chem::Element::O, {0, d, 0}, 0, false, 1});
  pocket.push_back({chem::Element::O, {0, 0, d}, 0, false, 1});
  pocket.push_back({chem::Element::O, {-d, 0, 0}, 0, false, 1});
  pocket.push_back({chem::Element::N, {0, -d, 0}, 0, false, 1});
  pocket.push_back({chem::Element::N, {0, 0, -d}, 0, false, 1});
  pocket.push_back({chem::Element::N, {d, 0, 0}, 0, false, 1});
  pocket.push_back({chem::Element::N, {-d, 0, 0}, 0, false, 1});

  chem::GraphFeaturizerConfig cfg;
  cfg.max_pocket_atoms = 4;
  for (bool use_cells : {true, false}) {
    chem::GraphFeaturizerConfig c = cfg;
    c.use_cell_list = use_cells;
    c.cell_list_min_atoms = 0;
    const graph::SpatialGraph g = chem::GraphFeaturizer(c).featurize(lig, pocket);
    ASSERT_EQ(g.num_nodes(), 1 + 4);
    const int64_t o_col = chem::element_index(chem::Element::O);
    const int64_t n_col = chem::element_index(chem::Element::N);
    for (int64_t row = 1; row < 5; ++row) {
      EXPECT_EQ(g.node_features.at(row, o_col), 1.0f) << "tie-break must keep indices 0-3";
      EXPECT_EQ(g.node_features.at(row, n_col), 0.0f);
    }
  }
  expect_graph_bitwise(chem::GraphFeaturizer(cfg).featurize(lig, pocket),
                       chem::GraphFeaturizer(brute(cfg)).featurize(lig, pocket));
}

// ---- MM-GBSA terms: cell list vs brute force -----------------------------

TEST(CellListMmGbsa, AllTermsBitwiseAcrossRandomGeometries) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    chem::Molecule lig = random_ligand(rng);
    const std::vector<chem::Atom> pocket = random_pocket(rng, 60 + trial * 80);
    dock::MmGbsaConfig cell_cfg;
    cell_cfg.gb_cutoff = 7.0f;  // finite cutoff so GB exercises the cell route
    cell_cfg.cell_list_min_atoms = 0;  // force the engine at test sizes
    dock::MmGbsaConfig brute_cfg = cell_cfg;
    brute_cfg.use_cell_list = false;

    EXPECT_EQ(dock::lj_energy(lig, pocket, cell_cfg), dock::lj_energy(lig, pocket, brute_cfg));
    EXPECT_EQ(dock::gb_polar(lig, pocket, cell_cfg), dock::gb_polar(lig, pocket, brute_cfg));
    EXPECT_EQ(dock::sa_nonpolar(lig, pocket, cell_cfg), dock::sa_nonpolar(lig, pocket, brute_cfg));
    EXPECT_EQ(dock::elec_energy(lig, pocket, cell_cfg), dock::elec_energy(lig, pocket, brute_cfg));
    // Full pipeline (minimizer + all terms) stays bitwise equal too.
    EXPECT_EQ(dock::mmgbsa_score(lig, pocket, cell_cfg),
              dock::mmgbsa_score(lig, pocket, brute_cfg));

    // Default config: GB keeps the historical cutoff-free sum; the cell
    // route must leave it untouched.
    dock::MmGbsaConfig default_brute;
    default_brute.use_cell_list = false;
    EXPECT_EQ(dock::gb_polar(lig, pocket, {}), dock::gb_polar(lig, pocket, default_brute));
  }
}

TEST(CellListMmGbsa, ElecEnergyMatchesScoreTermsBitwise) {
  // The minimizer-objective bugfix adds electrostatics via elec_energy;
  // this pins it to the canonical score_terms accumulation bit for bit.
  Rng rng(32);
  for (int trial = 0; trial < 4; ++trial) {
    chem::MoleculeGenConfig mc;
    mc.charge_probability = 0.5f;  // make charged-charged pairs common
    chem::Molecule lig = chem::generate_molecule(mc, rng);
    chem::embed_conformer(lig, rng);
    data::PocketConfig pc;
    pc.charged_frac = 0.5f;
    const std::vector<chem::Atom> pocket = data::make_pocket(pc, rng);
    for (bool cells : {true, false}) {
      dock::MmGbsaConfig cfg;
      cfg.use_cell_list = cells;
      cfg.cell_list_min_atoms = 0;
      EXPECT_EQ(dock::elec_energy(lig, pocket, cfg),
                dock::score_terms(lig, pocket).electrostatic);
    }
  }
}

TEST(CellListMmGbsa, EmptyPocketAndSingleAtom) {
  Rng rng(33);
  chem::Molecule lig = random_ligand(rng);
  EXPECT_EQ(dock::lj_energy(lig, {}, {}), 0.0f);
  EXPECT_EQ(dock::elec_energy(lig, {}, {}), 0.0f);
  std::vector<chem::Atom> single{chem::Atom{chem::Element::O, lig.atoms()[0].pos + Vec3{3, 0, 0}, 0, false, 1}};
  dock::MmGbsaConfig bcfg;
  bcfg.use_cell_list = false;
  dock::MmGbsaConfig ccfg;
  ccfg.cell_list_min_atoms = 0;  // force the engine even for one atom
  EXPECT_EQ(dock::lj_energy(lig, single, ccfg), dock::lj_energy(lig, single, bcfg));
  EXPECT_EQ(dock::sa_nonpolar(lig, single, ccfg), dock::sa_nonpolar(lig, single, bcfg));
}

// ---- thread-count determinism --------------------------------------------

TEST(CellListDeterminism, OutputsBitwiseIdenticalUnderComputePool) {
  Rng rng(41);
  chem::Molecule lig = random_ligand(rng);
  const std::vector<chem::Atom> pocket = random_pocket(rng, 120);

  chem::GraphFeaturizerConfig gcfg;
  gcfg.cell_list_min_atoms = 0;  // keep the engine in play for this check
  chem::VoxelConfig vcfg;
  dock::MmGbsaConfig mcfg;
  mcfg.cell_list_min_atoms = 0;
  const graph::SpatialGraph g_serial = chem::GraphFeaturizer(gcfg).featurize(lig, pocket);
  const Tensor v_serial = chem::Voxelizer(vcfg).voxelize(lig, pocket, {});
  const float mm_serial = dock::mmgbsa_score(lig, pocket, mcfg);

  core::ThreadPool pool(8);
  core::ComputePoolGuard guard(&pool);
  const graph::SpatialGraph g_pool = chem::GraphFeaturizer(gcfg).featurize(lig, pocket);
  const Tensor v_pool = chem::Voxelizer(vcfg).voxelize(lig, pocket, {});
  const float mm_pool = dock::mmgbsa_score(lig, pocket, mcfg);

  expect_graph_bitwise(g_serial, g_pool);
  expect_tensor_bitwise(v_serial, v_pool);
  EXPECT_EQ(mm_serial, mm_pool);
}

// ---- feature_set_version wiring ------------------------------------------

TEST(FeatureSetVersion, V1StaysBitwisePinnedNextToV2) {
  Rng rng(51);
  chem::Molecule lig = random_ligand(rng);
  const std::vector<chem::Atom> pocket = random_pocket(rng, 60);

  // Voxel: v2 widens each block by one channel; the 8 historical channels
  // must be bitwise unchanged (per-channel splat sequences are identical).
  chem::VoxelConfig v1, v2;
  v2.feature_set_version = 2;
  ASSERT_EQ(v1.channels(), 2 * chem::kVoxelChannelsPerBlock);
  ASSERT_EQ(v2.channels(), 2 * (chem::kVoxelChannelsPerBlock + 1));
  const Tensor g1 = chem::Voxelizer(v1).voxelize(lig, pocket, {});
  const Tensor g2 = chem::Voxelizer(v2).voxelize(lig, pocket, {});
  const int64_t vox = static_cast<int64_t>(v1.grid_dim) * v1.grid_dim * v1.grid_dim;
  for (int block = 0; block < 2; ++block) {
    for (int ch = 0; ch < chem::kVoxelChannelsPerBlock; ++ch) {
      const float* p1 = g1.data() + (static_cast<int64_t>(block) * v1.channels_per_block() + ch) * vox;
      const float* p2 = g2.data() + (static_cast<int64_t>(block) * v2.channels_per_block() + ch) * vox;
      EXPECT_EQ(0, std::memcmp(p1, p2, static_cast<size_t>(vox) * sizeof(float)))
          << "historical channel " << ch << " block " << block << " drifted under v2";
    }
  }

  // Graph: v1 carries no edge-feature tensor and zero pocket degrees.
  chem::GraphFeaturizerConfig gc1;
  const graph::SpatialGraph sg1 = chem::GraphFeaturizer(gc1).featurize(lig, pocket);
  EXPECT_TRUE(sg1.noncovalent_features.empty());
  const int64_t deg_col = chem::kNumElements + 0;
  for (int64_t r = sg1.num_ligand_nodes; r < sg1.num_nodes(); ++r) {
    EXPECT_EQ(sg1.node_features.at(r, deg_col), 0.0f);
  }
}

TEST(FeatureSetVersion, V2AddsHBondChannelsAndPocketDegrees) {
  // Donor-N ligand atom 3.0 A from an acceptor O, with a carbon neighbor
  // behind it (angle ~180 deg): a textbook interface H-bond. Two pocket
  // atoms sit within the covalent threshold of each other -> pseudo-bond
  // degree 1 each under v2.
  chem::Molecule lig;
  const int32_t c = lig.add_atom(chem::Element::C, {-1.4f, 0, 0});
  const int32_t n = lig.add_atom(chem::Element::N, {0, 0, 0});
  lig.add_bond(c, n);
  lig.atoms()[static_cast<size_t>(n)].implicit_h = 2;
  std::vector<chem::Atom> pocket;
  pocket.push_back({chem::Element::O, {3.0f, 0, 0}, 0, false, 0});
  pocket.push_back({chem::Element::O, {3.0f, 1.5f, 0}, 0, false, 0});

  const std::vector<chem::HBond> hbonds = chem::find_hbonds(lig, pocket);
  ASSERT_FALSE(hbonds.empty());
  EXPECT_EQ(hbonds[0].ligand_atom, n);
  EXPECT_EQ(hbonds[0].pocket_atom, 0);

  chem::GraphFeaturizerConfig gc2;
  gc2.feature_set_version = 2;
  const graph::SpatialGraph sg2 = chem::GraphFeaturizer(gc2).featurize(lig, pocket);
  ASSERT_FALSE(sg2.noncovalent_features.empty());
  ASSERT_EQ(sg2.noncovalent_features.dim(0), static_cast<int64_t>(sg2.noncovalent.size()));
  ASSERT_EQ(sg2.noncovalent_features.dim(1), chem::kGraphEdgeFeaturesV2);
  // Some interface edge must carry the H-bond flag, and every distance
  // channel lies in (0, 1].
  bool saw_hbond_edge = false;
  for (int64_t e = 0; e < sg2.noncovalent_features.dim(0); ++e) {
    const float dn = sg2.noncovalent_features.at(e, 0);
    EXPECT_GT(dn, 0.0f);
    EXPECT_LE(dn, 1.0f);
    if (sg2.noncovalent_features.at(e, 1) == 1.0f) saw_hbond_edge = true;
  }
  EXPECT_TRUE(saw_hbond_edge);
  // Pocket atoms 0 and 1 are 1.5 A apart (< covalent threshold): degree 1.
  const int64_t deg_col = chem::kNumElements + 0;
  EXPECT_EQ(sg2.node_features.at(2, deg_col), 0.25f);  // degree 1 / 4
  EXPECT_EQ(sg2.node_features.at(3, deg_col), 0.25f);

  // Voxel: the v2 H-bond channel holds mass, and pocket-grid amortization
  // is refused (the channel couples ligand and pocket).
  chem::VoxelConfig v2;
  v2.feature_set_version = 2;
  chem::Voxelizer vox(v2);
  const Tensor grid = vox.voxelize(lig, pocket, {});
  const int64_t voxels = static_cast<int64_t>(v2.grid_dim) * v2.grid_dim * v2.grid_dim;
  float hb_mass = 0.0f;
  const float* hb = grid.data() + static_cast<int64_t>(chem::kVoxelHBondChannel) * voxels;
  for (int64_t i = 0; i < voxels; ++i) hb_mass += hb[i];
  EXPECT_GT(hb_mass, 0.0f);
  EXPECT_THROW(vox.voxelize_ligand_onto(lig, grid, {}), std::logic_error);
}

TEST(FeatureSetVersion, ScorerAndRegistryRejectMismatches) {
  chem::VoxelConfig v1;
  chem::GraphFeaturizerConfig g2;
  g2.feature_set_version = 2;
  Rng rng(61);
  models::Cnn3dConfig cc;
  cc.grid_dim = v1.grid_dim;
  cc.in_channels = v1.channels();
  cc.conv_filters1 = 4;
  cc.conv_filters2 = 8;
  cc.dense_nodes = 16;
  EXPECT_THROW(serve::RegressorScorer("mismatch", std::make_unique<models::Cnn3d>(cc, rng), v1, g2),
               std::invalid_argument);

  // Artifact round trip: a v2-trained artifact refuses v1 serving configs
  // and accepts matching v2 ones.
  const std::string path =
      (std::filesystem::temp_directory_path() / "df_fsv_artifact.dfc").string();
  chem::VoxelConfig v2 = v1;
  v2.feature_set_version = 2;
  cc.in_channels = v2.channels();
  models::Cnn3d donor(cc, rng);
  compile::save_compiled(donor, path, /*poses_per_batch=*/0, {}, /*feature_set_version=*/2);
  const compile::CompiledModel cm = compile::load_compiled(path);
  EXPECT_EQ(cm.feature_set_version, 2);

  serve::ModelRegistry reg;
  chem::GraphFeaturizerConfig g1;
  EXPECT_THROW(serve::add_compiled(reg, "v2_model", path, v1, g1), std::invalid_argument);
  serve::add_compiled(reg, "v2_model", path, v2, g2);
  EXPECT_TRUE(reg.contains("v2_model"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace df
