// Chaos harness for the multi-node scoring path: real score_server_node
// processes (fork+exec of $DF_SERVER_BIN) are SIGKILLed mid-campaign and
// respawned on their old ports, and the final CampaignReport must still be
// bitwise identical to the single-process run — node death never loses a
// work unit, never double-scores one, and never moves a single float bit.
// Registered under the `chaos` ctest label with a hard timeout; the fast
// suites never fork processes.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign_test_utils.h"
#include "chem/conformer.h"
#include "screen/controller.h"

namespace df::screen {
namespace {

namespace fs = std::filesystem;
using core::Rng;
using namespace std::chrono_literals;

/// Poll `pred` every few ms until it holds or `timeout` passes.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 120s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// One score_server_node child process. Spawn/kill/respawn on a pinned
/// port; the model flags match tests/campaign_test_utils.h's
/// tiny_sg_factory (seed 31, gather 8/12, k 2/2, grid 8), so every node —
/// and every respawn of a killed node — serves bit-identical scores.
class ServerProcess {
 public:
  explicit ServerProcess(fs::path dir) : dir_(std::move(dir)) {}
  ~ServerProcess() { kill_hard(); }
  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  /// Start the child and block until it is serving. `port` 0 asks the
  /// kernel; the bound port is learned from the --port-file handshake and
  /// reused verbatim by respawn().
  bool spawn(int port, int poses_per_batch, bool ordered = true,
             const std::string& scorer = "sgcnn") {
    const char* bin = std::getenv("DF_SERVER_BIN");
    if (bin == nullptr) return false;
    static std::atomic<int> counter{0};
    const std::string tag = "node" + std::to_string(counter.fetch_add(1));
    const fs::path port_file = dir_ / (tag + ".port");
    std::error_code ec;
    fs::remove(port_file, ec);

    std::vector<std::string> args = {
        bin,
        "--port=" + std::to_string(port),
        "--port-file=" + port_file.string(),
        "--node-id=" + tag,
        "--scorer=" + scorer,
        "--model-seed=31",
        "--voxel-grid=8",
        "--gather-cov=8",
        "--gather-noncov=12",
        "--k-cov=2",
        "--k-noncov=2",
        "--workers=2",
        "--poses-per-batch=" + std::to_string(poses_per_batch),
        std::string("--ordered=") + (ordered ? "1" : "0"),
    };
    pid_ = ::fork();
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(bin, argv.data());
      _exit(127);
    }
    if (pid_ < 0) return false;
    if (!eventually([&] { return fs::exists(port_file); }, 60s)) return false;
    std::ifstream in(port_file);
    int bound = 0;
    in >> bound;
    if (bound <= 0) return false;
    port_ = bound;
    poses_per_batch_ = poses_per_batch;
    ordered_ = ordered;
    scorer_ = scorer;
    return true;
  }

  /// SIGKILL — no drain, no goodbye; the wire just goes dead.
  void kill_hard() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int st = 0;
    ::waitpid(pid_, &st, 0);
    pid_ = -1;
  }

  /// Restart on the port of the previous life (SO_REUSEADDR on the server
  /// side makes the rebind immediate).
  bool respawn() { return spawn(port_, poses_per_batch_, ordered_, scorer_); }

  int port() const { return port_; }

 private:
  fs::path dir_;
  pid_t pid_ = -1;
  int port_ = 0;
  int poses_per_batch_ = 0;
  bool ordered_ = true;
  std::string scorer_;
};

class ClusterChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv("DF_SERVER_BIN") == nullptr) {
      GTEST_SKIP() << "DF_SERVER_BIN not set (run under ctest -L chaos)";
    }
    root_ = fs::temp_directory_path() /
            ("df_chaos_" +
             std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);

    Rng rng(21);
    targets_ = {data::make_target(data::TargetKind::Protease1, rng),
                data::make_target(data::TargetKind::Spike1, rng)};
    compounds_ =
        data::generate_library(data::default_library(data::LibrarySource::Enamine, 10), rng);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  CampaignConfig chaos_campaign() {
    CampaignConfig cfg = testutil::tiny_campaign();
    cfg.job.poses_per_batch = 8;  // several chunk frames per unit
    return cfg;
  }

  ControllerConfig controller_config() {
    ControllerConfig cc;
    cc.scorer = "sgcnn";
    cc.client.host = "127.0.0.1";
    cc.client.connect_timeout_ms = 1000;
    cc.client.io_timeout_ms = 10000;
    cc.client.backoff_base_ms = 1;
    cc.client.backoff_max_ms = 10;
    cc.heartbeat_interval_ms = 50;
    cc.heartbeat_misses = 2;
    cc.inflight_per_node = 2;
    return cc;
  }

  fs::path root_;
  std::vector<data::Target> targets_;
  std::vector<data::LibraryCompound> compounds_;
};

// The headline pin: a campaign over 3 real server processes, with the whole
// fleet SIGKILLed and respawned twice mid-run and a scripted logical fault
// schedule on top, ends in a report bitwise identical to the in-process
// single-driver run of the same campaign.
TEST_F(ClusterChaosTest, CampaignSurvivesFleetKillsBitIdentical) {
  ScriptedFaultInjector injector;
  injector.doom(0, 0, 0);  // logical §4.3 faults compose with physical kills
  injector.doom(3, 0, 1);

  CampaignConfig cfg = chaos_campaign();
  cfg.fault_injector = &injector;
  cfg.checkpoint_every_jobs = 2;

  fs::create_directories(root_ / "ref");
  cfg.output_prefix = (root_ / "ref" / "out").string();
  cfg.checkpoint_path = (root_ / "ref" / "campaign.ckpt").string();
  const CampaignReport baseline =
      ScreeningCampaign(cfg, targets_).run(compounds_, testutil::tiny_sg_factory());

  std::vector<std::unique_ptr<ServerProcess>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<ServerProcess>(root_));
    ASSERT_TRUE(servers.back()->spawn(0, cfg.job.poses_per_batch)) << "node " << i;
  }
  ClusterController cluster(controller_config());
  for (const auto& s : servers) {
    std::string error;
    ASSERT_TRUE(cluster.register_node("127.0.0.1", s->port(), &error)) << error;
  }
  ASSERT_EQ(cluster.healthy_count(), 3);
  ASSERT_TRUE(cluster.ordered());
  ASSERT_EQ(cluster.poses_per_batch(), cfg.job.poses_per_batch);

  // Chaos monkey: once scoring demonstrably started, SIGKILL the ENTIRE
  // fleet (the campaign cannot finish with zero healthy nodes, so the kill
  // is mid-campaign by construction), respawn on the same ports, let the
  // heartbeat heal the cluster, and do it all again.
  std::atomic<bool> campaign_done{false};
  std::atomic<int> kill_cycles{0};
  std::thread chaos([&] {
    eventually([&] { return cluster.stats().dispatches >= 2; });
    for (int cycle = 0; cycle < 2; ++cycle) {
      for (auto& s : servers) s->kill_hard();
      eventually([&] { return cluster.healthy_count() == 0 || campaign_done.load(); }, 30s);
      for (auto& s : servers) ASSERT_TRUE(s->respawn());
      eventually([&] { return cluster.healthy_count() == 3; }, 60s);
      kill_cycles.fetch_add(1);
      const uint64_t mark = cluster.stats().dispatches;
      eventually([&] { return cluster.stats().dispatches > mark || campaign_done.load(); },
                 10s);
    }
  });

  fs::create_directories(root_ / "chaos");
  cfg.output_prefix = (root_ / "chaos" / "out").string();
  cfg.checkpoint_path = (root_ / "chaos" / "campaign.ckpt").string();
  const CampaignReport report = ScreeningCampaign(cfg, targets_).run(compounds_, cluster);
  campaign_done.store(true);
  chaos.join();

  EXPECT_EQ(kill_cycles.load(), 2);
  testutil::expect_reports_bitwise_equal(baseline, report);
  EXPECT_FALSE(report.results.empty());
  const ControllerStats cs = cluster.stats();
  EXPECT_EQ(cs.units_finished, cs.units_submitted);
  RecordProperty("node_deaths", static_cast<int>(cs.node_deaths));
  RecordProperty("requeues", static_cast<int>(cs.requeues));
}

// Controller-level exactly-once pin: kill one node while units are in
// flight; every submitted unit gets exactly one verdict, none vanish, none
// arrive twice.
TEST_F(ClusterChaosTest, NodeDeathNeverLosesOrDoublesUnits) {
  const int kBatch = 4;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<ServerProcess>(root_));
    ASSERT_TRUE(servers.back()->spawn(0, kBatch));
  }
  ClusterController cluster(controller_config());
  for (const auto& s : servers) {
    std::string error;
    ASSERT_TRUE(cluster.register_node("127.0.0.1", s->port(), &error)) << error;
  }

  Rng rng(31);
  const std::vector<chem::Atom> pocket = [&] {
    chem::Molecule m = chem::generate_molecule({}, rng);
    chem::embed_conformer(m, rng);
    return m.atoms();
  }();
  const auto make_unit = [&](int n) {
    std::vector<serve::PoseInput> poses;
    for (int i = 0; i < n; ++i) {
      chem::Molecule lig = chem::generate_molecule({}, rng);
      chem::embed_conformer(lig, rng);
      serve::PoseInput p;
      p.ligand = std::move(lig);
      p.pocket = &pocket;
      poses.push_back(std::move(p));
    }
    return poses;
  };

  constexpr uint32_t kUnits = 24;
  for (uint32_t u = 0; u < kUnits; ++u) cluster.submit_unit(u, make_unit(3));

  std::thread killer([&] {
    eventually([&] { return cluster.stats().dispatches >= 2; });
    servers[0]->kill_hard();
    eventually([&] { return cluster.stats().node_deaths >= 1 || cluster.outstanding() == 0; },
               30s);
    ASSERT_TRUE(servers[0]->respawn());
  });

  std::set<uint32_t> seen;
  for (uint32_t i = 0; i < kUnits; ++i) {
    const UnitResult r = cluster.wait_unit();
    EXPECT_TRUE(r.ok) << serve::score_error_name(r.error) << ": " << r.message;
    EXPECT_EQ(r.scores.size(), 3u);
    EXPECT_TRUE(seen.insert(r.unit_id).second) << "unit " << r.unit_id << " delivered twice";
  }
  killer.join();
  EXPECT_EQ(seen.size(), kUnits);
  EXPECT_EQ(cluster.outstanding(), 0u);
  EXPECT_EQ(cluster.stats().units_finished, kUnits);
}

// Graceful drain: a drained node stops receiving work but the cluster keeps
// scoring, and scores do not depend on which node serves a unit.
TEST_F(ClusterChaosTest, DrainNodeIsGracefulAndScoresAreNodeIndependent) {
  const int kBatch = 4;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<ServerProcess>(root_));
    ASSERT_TRUE(servers.back()->spawn(0, kBatch));
  }
  ClusterController cluster(controller_config());
  for (const auto& s : servers) {
    std::string error;
    ASSERT_TRUE(cluster.register_node("127.0.0.1", s->port(), &error)) << error;
  }

  const std::vector<chem::Atom> pocket = [&] {
    Rng rng(77);
    chem::Molecule m = chem::generate_molecule({}, rng);
    chem::embed_conformer(m, rng);
    return m.atoms();
  }();
  // Same seed per index -> identical unit content across both rounds.
  const auto make_unit = [&](uint64_t seed) {
    Rng rng(1000 + seed);
    std::vector<serve::PoseInput> poses;
    for (int i = 0; i < 3; ++i) {
      chem::Molecule lig = chem::generate_molecule({}, rng);
      chem::embed_conformer(lig, rng);
      serve::PoseInput p;
      p.ligand = std::move(lig);
      p.pocket = &pocket;
      poses.push_back(std::move(p));
    }
    return poses;
  };

  constexpr uint32_t kRound = 6;
  std::vector<std::vector<float>> first(kRound);
  for (uint32_t u = 0; u < kRound; ++u) cluster.submit_unit(u, make_unit(u));
  for (uint32_t i = 0; i < kRound; ++i) {
    const UnitResult r = cluster.wait_unit();
    ASSERT_TRUE(r.ok) << r.message;
    first[r.unit_id] = r.scores;
  }

  ASSERT_TRUE(cluster.drain_node("127.0.0.1", servers[0]->port()));
  EXPECT_FALSE(cluster.drain_node("127.0.0.1", 1));  // unknown node
  bool found = false;
  for (const NodeStatus& n : cluster.nodes()) {
    if (n.port == servers[0]->port()) {
      EXPECT_TRUE(n.draining);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Round 2 runs on the remaining node only — identical content, and the
  // bits must not care which node answered.
  for (uint32_t u = 0; u < kRound; ++u) cluster.submit_unit(100 + u, make_unit(u));
  for (uint32_t i = 0; i < kRound; ++i) {
    const UnitResult r = cluster.wait_unit();
    ASSERT_TRUE(r.ok) << r.message;
    const std::vector<float>& before = first[r.unit_id - 100];
    ASSERT_EQ(r.scores.size(), before.size());
    for (size_t k = 0; k < before.size(); ++k) {
      EXPECT_EQ(r.scores[k], before[k]) << "drain moved score bits, unit " << r.unit_id;
    }
  }
}

// Registration validates the Hello before a node joins the fleet: wrong
// scorer, non-ordered nodes (when ordering is required), and batch-geometry
// mismatches are all rejected with an explanation.
TEST_F(ClusterChaosTest, RegistrationRejectsIncompatibleNodes) {
  ServerProcess ordered8(root_);
  ASSERT_TRUE(ordered8.spawn(0, 8));
  ServerProcess unordered(root_);
  ASSERT_TRUE(unordered.spawn(0, 8, /*ordered=*/false));
  ServerProcess batch16(root_);
  ASSERT_TRUE(batch16.spawn(0, 16));

  {
    ControllerConfig cc = controller_config();
    cc.scorer = "mmgbsa";  // not served by these nodes
    ClusterController cluster(cc);
    std::string error;
    EXPECT_FALSE(cluster.register_node("127.0.0.1", ordered8.port(), &error));
    EXPECT_NE(error.find("mmgbsa"), std::string::npos) << error;
    EXPECT_EQ(cluster.healthy_count(), 0);
  }
  {
    ClusterController cluster(controller_config());  // require_ordered = true
    std::string error;
    EXPECT_FALSE(cluster.register_node("127.0.0.1", unordered.port(), &error));
    EXPECT_EQ(cluster.healthy_count(), 0);
  }
  {
    ClusterController cluster(controller_config());
    std::string error;
    ASSERT_TRUE(cluster.register_node("127.0.0.1", ordered8.port(), &error)) << error;
    EXPECT_FALSE(cluster.register_node("127.0.0.1", batch16.port(), &error))
        << "batch-geometry mismatch must be rejected";
    EXPECT_EQ(cluster.healthy_count(), 1);
    // Registering the same node twice is also refused.
    EXPECT_FALSE(cluster.register_node("127.0.0.1", ordered8.port(), &error));
  }
}

// Driver death composes with the cluster: kill the campaign driver (the
// harness throw) mid-run, then resume from its checkpoint with a FRESH
// controller over the same still-running nodes — bitwise identical to the
// uninterrupted in-process reference.
TEST_F(ClusterChaosTest, KilledDriverResumesAcrossClusterBitIdentical) {
  ScriptedFaultInjector injector;
  injector.doom(0, 0, 0);
  injector.doom(2, 0, 1);

  CampaignConfig cfg = chaos_campaign();
  cfg.fault_injector = &injector;
  cfg.checkpoint_every_jobs = 2;

  fs::create_directories(root_ / "ref");
  cfg.output_prefix = (root_ / "ref" / "out").string();
  cfg.checkpoint_path = (root_ / "ref" / "campaign.ckpt").string();
  const CampaignReport reference =
      ScreeningCampaign(cfg, targets_).run(compounds_, testutil::tiny_sg_factory());

  std::vector<std::unique_ptr<ServerProcess>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<ServerProcess>(root_));
    ASSERT_TRUE(servers.back()->spawn(0, cfg.job.poses_per_batch));
  }
  const auto register_all = [&](ClusterController& cluster) {
    for (const auto& s : servers) {
      std::string error;
      ASSERT_TRUE(cluster.register_node("127.0.0.1", s->port(), &error)) << error;
    }
  };

  fs::create_directories(root_ / "killed");
  cfg.output_prefix = (root_ / "killed" / "out").string();
  cfg.checkpoint_path = (root_ / "killed" / "campaign.ckpt").string();
  // Late enough that at least one checkpoint (every 2 completed units) is
  // on disk before the driver dies, so the resume actually recovers work.
  cfg.kill_after_attempts = 6;
  {
    ClusterController cluster(controller_config());
    register_all(cluster);
    EXPECT_THROW(ScreeningCampaign(cfg, targets_).run(compounds_, cluster), CampaignKilled);
    // The aborted run stopped the controller (its poses borrowed the dead
    // campaign's memory); it must refuse further use rather than dangle.
    EXPECT_THROW(cluster.wait_unit(), std::runtime_error);
  }

  cfg.kill_after_attempts = -1;
  ClusterController fresh(controller_config());
  register_all(fresh);
  const CampaignReport resumed = ScreeningCampaign(cfg, targets_).run(compounds_, fresh);
  testutil::expect_reports_bitwise_equal(reference, resumed);
  EXPECT_GT(resumed.units_resumed, 0);
}

}  // namespace
}  // namespace df::screen
