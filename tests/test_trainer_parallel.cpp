// Data-parallel training determinism pins (the trainer analogue of
// test_campaign_determinism): for every model family, train_model at 4 and
// 8 lanes must be BITWISE identical to the serial run — every EpochStats,
// the best epoch, and the final parameters — with dropout and rotation
// augmentation on, so the keyed per-sample streams are part of what is
// pinned. Reruns with the same seed must also be bitwise stable.
#include <gtest/gtest.h>

#include "trainer_test_utils.h"

namespace df::models {
namespace {

namespace tu = testutil;

TrainConfig base_config() {
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 6;
  tc.lr = 1e-3f;
  tc.grad_shards = 4;
  tc.seed = 77;
  return tc;
}

/// Train a fresh model from `factory` at the given lane count and hand
/// back (result, model-with-final-weights).
std::pair<TrainResult, std::unique_ptr<Regressor>> run(const RegressorFactory& factory,
                                                       const tu::Corpus& c, TrainConfig tc,
                                                       int threads) {
  std::unique_ptr<Regressor> model = factory();
  tc.threads = threads;
  if (threads > 1) tc.replica_factory = factory;
  TrainResult res = train_model(*model, *c.train, *c.val, tc);
  return {std::move(res), std::move(model)};
}

void expect_parallel_equals_serial(const RegressorFactory& factory, bool augment,
                                   uint64_t corpus_seed) {
  const std::unique_ptr<tu::Corpus> c = tu::make_corpus(16, corpus_seed, augment);
  ASSERT_GT(c->val->size(), 0u);  // empty val would reduce the pin to zeros
  const TrainConfig tc = base_config();
  auto [serial_res, serial_model] = run(factory, *c, tc, 1);
  ASSERT_EQ(serial_res.epochs.size(), 2u);
  for (int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto [par_res, par_model] = run(factory, *c, tc, threads);
    tu::expect_results_bitwise_equal(serial_res, par_res);
    tu::expect_parameters_bitwise_equal(*serial_model, *par_model);
  }
}

TEST(TrainerParallel, SgcnnBitwiseAcrossThreadCounts) {
  expect_parallel_equals_serial(tu::sg_factory(), /*augment=*/false, 31);
}

TEST(TrainerParallel, Cnn3dBitwiseAcrossThreadCountsWithDropoutAndAugment) {
  expect_parallel_equals_serial(tu::cnn_factory(), /*augment=*/true, 33);
}

TEST(TrainerParallel, CoherentFusionBitwiseAcrossThreadCounts) {
  expect_parallel_equals_serial(tu::fusion_factory(), /*augment=*/true, 35);
}

TEST(TrainerParallel, RerunWithSameSeedBitwiseStable) {
  const std::unique_ptr<tu::Corpus> c = tu::make_corpus(16, 37, /*augment=*/true);
  const TrainConfig tc = base_config();
  auto [res_a, model_a] = run(tu::cnn_factory(), *c, tc, 4);
  auto [res_b, model_b] = run(tu::cnn_factory(), *c, tc, 4);
  tu::expect_results_bitwise_equal(res_a, res_b);
  tu::expect_parameters_bitwise_equal(*model_a, *model_b);
}

TEST(TrainerParallel, DifferentSeedActuallyChangesTraining) {
  // Guards the pins above against a degenerate "everything is constant"
  // world: seeds must matter (shuffle, dropout, augmentation all keyed).
  const std::unique_ptr<tu::Corpus> c = tu::make_corpus(16, 39, /*augment=*/true);
  TrainConfig tc = base_config();
  auto [res_a, model_a] = run(tu::cnn_factory(), *c, tc, 1);
  tc.seed = tc.seed + 1;
  auto [res_b, model_b] = run(tu::cnn_factory(), *c, tc, 1);
  ASSERT_EQ(res_a.epochs.size(), res_b.epochs.size());
  EXPECT_NE(tu::float_bits(res_a.epochs.back().train_mse),
            tu::float_bits(res_b.epochs.back().train_mse));
}

TEST(TrainerParallel, SharedPoolMatchesOwnedPool) {
  // A borrowed pool (the PB2 population path) must not change bits either.
  const std::unique_ptr<tu::Corpus> c = tu::make_corpus(16, 41, /*augment=*/false);
  const TrainConfig tc = base_config();
  auto [owned_res, owned_model] = run(tu::sg_factory(), *c, tc, 4);
  core::ThreadPool pool(4);
  TrainConfig shared_tc = tc;
  shared_tc.threads = 4;
  shared_tc.replica_factory = tu::sg_factory();
  shared_tc.pool = &pool;
  std::unique_ptr<Regressor> model = tu::sg_factory()();
  const TrainResult shared_res = train_model(*model, *c->train, *c->val, shared_tc);
  tu::expect_results_bitwise_equal(owned_res, shared_res);
  tu::expect_parameters_bitwise_equal(*owned_model, *model);
}

}  // namespace
}  // namespace df::models
