// Checkpoint/resume property tests: a campaign killed after ANY number of
// job attempts — including with a torn shard block on disk — and then
// resumed must produce a CampaignReport bit-identical to the uninterrupted
// run, with fault injection enabled throughout (§4.3: jobs die, "another
// job takes its place"; here the whole driver dies too).
#include <gtest/gtest.h>

#include <filesystem>

#include "campaign_test_utils.h"
#include "screen/writer.h"

namespace df::screen {
namespace {

namespace fs = std::filesystem;
using core::Rng;

class CampaignResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("df_resume_" +
             std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);

    Rng rng(21);
    targets_ = {data::make_target(data::TargetKind::Protease1, rng)};
    compounds_ = data::generate_library(data::default_library(data::LibrarySource::Enamine, 5), rng);

    // Deterministic fault script: first unit dies once, third unit dies
    // twice — exercising retry chains on both sides of checkpoints.
    injector_.doom(0, 0, 0);
    injector_.doom(2, 0, 1);
    injector_.doom(2, 1, 0);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Campaign config writing into `name/` under the test root.
  CampaignConfig durable_cfg(const std::string& name) {
    fs::create_directories(root_ / name);
    CampaignConfig cfg = testutil::tiny_campaign();
    cfg.fault_injector = &injector_;
    cfg.checkpoint_every_jobs = 2;
    cfg.output_prefix = (root_ / name / "out").string();
    cfg.checkpoint_path = (root_ / name / "campaign.ckpt").string();
    return cfg;
  }

  CampaignReport run(const CampaignConfig& cfg) {
    return ScreeningCampaign(cfg, targets_).run(compounds_, testutil::tiny_sg_factory());
  }

  fs::path root_;
  std::vector<data::Target> targets_;
  std::vector<data::LibraryCompound> compounds_;
  ScriptedFaultInjector injector_;
};

TEST_F(CampaignResumeTest, KilledAtEveryAttemptBoundaryResumesExactly) {
  const CampaignReport reference = run(durable_cfg("ref"));
  ASSERT_GT(reference.jobs_run, 3);      // the fault script fired
  ASSERT_GT(reference.jobs_failed, 0);
  ASSERT_FALSE(reference.results.empty());

  for (int64_t kill_at = 1; kill_at <= reference.jobs_run; ++kill_at) {
    const std::string name = "kill" + std::to_string(kill_at);
    CampaignConfig cfg = durable_cfg(name);
    cfg.kill_after_attempts = kill_at;
    EXPECT_THROW(run(cfg), CampaignKilled) << "kill_at=" << kill_at;

    cfg.kill_after_attempts = -1;  // new process: resume from disk
    const CampaignReport resumed = run(cfg);
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at) +
                 " resumed_units=" + std::to_string(resumed.units_resumed));
    testutil::expect_reports_bitwise_equal(reference, resumed);
    // Output survives end-to-end: the manifest vouches for every shard.
    EXPECT_TRUE(verify_shard_manifest(cfg.output_prefix).empty());
  }
}

TEST_F(CampaignResumeTest, KilledMidShardWriteResumesExactly) {
  const CampaignReport reference = run(durable_cfg("ref"));
  for (int64_t kill_at = 1; kill_at <= reference.jobs_run; ++kill_at) {
    const std::string name = "torn" + std::to_string(kill_at);
    CampaignConfig cfg = durable_cfg(name);
    cfg.kill_after_attempts = kill_at;
    cfg.kill_mid_write = true;  // die with a half-appended block on disk
    EXPECT_THROW(run(cfg), CampaignKilled);

    cfg.kill_after_attempts = -1;
    cfg.kill_mid_write = false;
    const CampaignReport resumed = run(cfg);
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    testutil::expect_reports_bitwise_equal(reference, resumed);
    EXPECT_TRUE(verify_shard_manifest(cfg.output_prefix).empty());
  }
}

TEST_F(CampaignResumeTest, DoubleKillThenResumeStillExact) {
  const CampaignReport reference = run(durable_cfg("ref"));
  ASSERT_GT(reference.jobs_run, 2);
  // Die twice at different points before finally finishing.
  CampaignConfig cfg = durable_cfg("twice");
  cfg.kill_after_attempts = 1;
  EXPECT_THROW(run(cfg), CampaignKilled);
  cfg.kill_after_attempts = 2;  // counts attempts in THIS process
  EXPECT_THROW(run(cfg), CampaignKilled);
  cfg.kill_after_attempts = -1;
  testutil::expect_reports_bitwise_equal(reference, run(cfg));
}

TEST_F(CampaignResumeTest, ResumeAfterCompletionRunsNoJobs) {
  CampaignConfig cfg = durable_cfg("done");
  const CampaignReport first = run(cfg);
  const CampaignReport again = run(cfg);
  testutil::expect_reports_bitwise_equal(first, again);
  EXPECT_EQ(again.units_resumed, again.units_total);  // nothing re-ran
}

TEST_F(CampaignResumeTest, ShardsStreamDuringTheRun) {
  // A killed campaign leaves the completed units' rows on disk — that is
  // the whole point of streaming output vs the old end-of-run dump.
  const CampaignReport reference = run(durable_cfg("ref"));
  CampaignConfig cfg = durable_cfg("stream");
  cfg.kill_after_attempts = reference.jobs_run - 1;
  EXPECT_THROW(run(cfg), CampaignKilled);
  int64_t rows = 0;
  for (int s = 0; s < 2; ++s) {  // tiny_campaign: 1 node x 2 gpus = 2 shards
    const ShardScan scan = scan_shard_stream(shard_stream_path(cfg.output_prefix, s));
    if (scan.damage.empty() || scan.damage[0].kind == ShardDamageKind::TruncatedBlock) {
      rows += scan.rows();
    }
  }
  EXPECT_GT(rows, 0);
}

TEST_F(CampaignResumeTest, MismatchedCheckpointRejected) {
  CampaignConfig cfg = durable_cfg("guard");
  cfg.kill_after_attempts = 5;  // past the first checkpoint (K=2 completions)
  EXPECT_THROW(run(cfg), CampaignKilled);
  ASSERT_TRUE(fs::exists(cfg.checkpoint_path));
  cfg.kill_after_attempts = -1;

  CampaignConfig wrong_seed = cfg;
  wrong_seed.seed = cfg.seed + 1;
  EXPECT_THROW(ScreeningCampaign(wrong_seed, targets_).run(compounds_, testutil::tiny_sg_factory()),
               std::runtime_error);

  Rng rng(99);
  const auto other_library =
      data::generate_library(data::default_library(data::LibrarySource::ZINC, 5), rng);
  EXPECT_THROW(ScreeningCampaign(cfg, targets_).run(other_library, testutil::tiny_sg_factory()),
               std::runtime_error);

  // Same plan size but different job width: fault draws would change, so
  // the checkpoint's geometry record must reject the resume.
  CampaignConfig wrong_geom = cfg;
  wrong_geom.job.nodes = 8;
  wrong_geom.job.gpus_per_node = 1;
  EXPECT_THROW(run(wrong_geom), std::runtime_error);
}

TEST_F(CampaignResumeTest, CheckpointingRequiresStreamingOutput) {
  CampaignConfig cfg = durable_cfg("bad");
  cfg.output_prefix.clear();
  EXPECT_THROW(run(cfg), std::invalid_argument);
}

TEST_F(CampaignResumeTest, LostShardBlockIsReRunNotLost) {
  // Delete a completed unit's shard after a kill: resume must notice the
  // checkpoint vouches for data that is gone, re-run it, and still match.
  const CampaignReport reference = run(durable_cfg("ref"));
  CampaignConfig cfg = durable_cfg("lost");
  cfg.kill_after_attempts = reference.jobs_run - 1;
  EXPECT_THROW(run(cfg), CampaignKilled);
  for (int s = 0; s < 2; ++s) {
    fs::remove(shard_stream_path(cfg.output_prefix, s));
  }
  cfg.kill_after_attempts = -1;
  testutil::expect_reports_bitwise_equal(reference, run(cfg));
}

}  // namespace
}  // namespace df::screen
