// Fault-injection pins for the external-ScoringService campaign path (S4):
// the §4.3 fault machinery (ScriptedFaultInjector, StochasticFaultInjector,
// retry chains, exhaustion, kill/resume) must compose with `run(compounds,
// service, scorer)` exactly as it does with the in-process factory path —
// same attempt bookkeeping, same bits, because failure sampling is a pure
// function of (seed, unit, attempt) and never of where scoring happens.
#include <gtest/gtest.h>

#include <filesystem>

#include "campaign_test_utils.h"
#include "serve/registry.h"
#include "serve/service.h"

namespace df::screen {
namespace {

namespace fs = std::filesystem;
using core::Rng;

class ServiceFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    targets_ = {data::make_target(data::TargetKind::Protease2, rng)};
    compounds_ =
        data::generate_library(data::default_library(data::LibrarySource::Enamine, 5), rng);
  }

  /// Ordered-stream service wrapping the deterministic test factory, shaped
  /// to `cfg` exactly like the compat path builds its private one.
  std::unique_ptr<serve::ScoringService> make_service(const CampaignConfig& cfg,
                                                      int workers = 3) {
    serve::ModelRegistry reg;
    serve::add_regressor(reg, "sg", testutil::tiny_sg_factory(), cfg.job.voxel, cfg.job.graph);
    serve::ServiceConfig sc;
    sc.workers = workers;
    sc.poses_per_batch = cfg.job.poses_per_batch;
    sc.ordered_stream = true;
    return std::make_unique<serve::ScoringService>(std::move(reg), sc);
  }

  CampaignReport run_via_service(const CampaignConfig& cfg, int workers = 3) {
    auto service = make_service(cfg, workers);
    return ScreeningCampaign(cfg, targets_).run(compounds_, *service, "sg");
  }

  std::vector<data::Target> targets_;
  std::vector<data::LibraryCompound> compounds_;
};

TEST_F(ServiceFaultsTest, ScriptedFaultsMatchFactoryPathBitwise) {
  ScriptedFaultInjector injector;
  injector.doom(0, 0, 0);
  injector.doom(2, 0, 1);
  injector.doom(2, 1, 0);

  CampaignConfig cfg = testutil::tiny_campaign();
  cfg.fault_injector = &injector;
  const CampaignReport via_factory =
      ScreeningCampaign(cfg, targets_).run(compounds_, testutil::tiny_sg_factory());
  const CampaignReport via_service = run_via_service(cfg);

  EXPECT_EQ(via_factory.jobs_failed, 3);
  testutil::expect_reports_bitwise_equal(via_factory, via_service);
  EXPECT_EQ(via_service.jobs_failed, via_factory.jobs_failed);
  EXPECT_EQ(via_service.units_exhausted, 0);
}

TEST_F(ServiceFaultsTest, RetriedUnitsScoreIdenticallyToCleanRun) {
  // Failure sampling must never leak into predictions: a unit that needed
  // three attempts carries the same score bits as one that ran clean.
  CampaignConfig clean = testutil::tiny_campaign();
  const CampaignReport baseline = run_via_service(clean);

  ScriptedFaultInjector injector;
  injector.doom(0, 0, 0);
  injector.doom(0, 1, 1);
  CampaignConfig faulty = clean;
  faulty.fault_injector = &injector;
  const CampaignReport retried = run_via_service(faulty);

  EXPECT_EQ(retried.jobs_failed, 2);
  ASSERT_EQ(retried.results.size(), baseline.results.size());
  for (size_t i = 0; i < baseline.results.size(); ++i) {
    EXPECT_EQ(retried.results[i].fusion_pk, baseline.results[i].fusion_pk)
        << "retries changed score bits for compound " << baseline.results[i].compound_id;
  }
}

TEST_F(ServiceFaultsTest, ExhaustedUnitSurfacesWithoutPoisoningTheRest) {
  CampaignConfig cfg = testutil::tiny_campaign();
  ScriptedFaultInjector injector;
  // Doom every attempt unit 1 gets (initial + max_job_retries).
  for (int attempt = 0; attempt <= cfg.max_job_retries; ++attempt) {
    injector.doom(1, attempt, 0);
  }
  cfg.fault_injector = &injector;

  const CampaignReport report = run_via_service(cfg);
  EXPECT_EQ(report.units_exhausted, 1);
  EXPECT_EQ(report.jobs_failed, cfg.max_job_retries + 1);
  EXPECT_FALSE(report.results.empty());
  // Exhaustion is itself deterministic: a second run reproduces the report.
  testutil::expect_reports_bitwise_equal(report, run_via_service(cfg));
}

TEST_F(ServiceFaultsTest, StochasticInjectorDeterministicThroughService) {
  CampaignConfig cfg = testutil::tiny_campaign();
  cfg.job.inject_failures = true;  // default §4.3 stochastic injector
  cfg.job.nodes = 8;               // 20% per-attempt failure rate
  cfg.job.gpus_per_node = 1;

  const CampaignReport first = run_via_service(cfg, /*workers=*/1);
  const CampaignReport again = run_via_service(cfg, /*workers=*/4);
  EXPECT_FALSE(first.results.empty());
  testutil::expect_reports_bitwise_equal(first, again);
  EXPECT_EQ(first.jobs_failed, again.jobs_failed);

  // And the schedule matches the factory path: same seed, same failures,
  // same bits, regardless of the scoring transport.
  const CampaignReport via_factory =
      ScreeningCampaign(cfg, targets_).run(compounds_, testutil::tiny_sg_factory());
  testutil::expect_reports_bitwise_equal(via_factory, first);
  EXPECT_EQ(via_factory.jobs_failed, first.jobs_failed);
}

TEST_F(ServiceFaultsTest, KillAndResumeComposesWithInjectorThroughService) {
  const fs::path root =
      fs::temp_directory_path() / "df_service_faults_resume";
  fs::remove_all(root);
  fs::create_directories(root / "ref");
  fs::create_directories(root / "killed");

  ScriptedFaultInjector injector;
  injector.doom(0, 0, 0);
  injector.doom(2, 0, 1);

  CampaignConfig cfg = testutil::tiny_campaign();
  cfg.fault_injector = &injector;
  cfg.checkpoint_every_jobs = 2;

  cfg.output_prefix = (root / "ref" / "out").string();
  cfg.checkpoint_path = (root / "ref" / "campaign.ckpt").string();
  const CampaignReport reference = run_via_service(cfg);

  cfg.output_prefix = (root / "killed" / "out").string();
  cfg.checkpoint_path = (root / "killed" / "campaign.ckpt").string();
  cfg.kill_after_attempts = 3;
  EXPECT_THROW(run_via_service(cfg), CampaignKilled);
  cfg.kill_after_attempts = -1;
  const CampaignReport resumed = run_via_service(cfg);

  testutil::expect_reports_bitwise_equal(reference, resumed);
  EXPECT_GT(resumed.units_resumed, 0);
  fs::remove_all(root);
}

}  // namespace
}  // namespace df::screen
