// Model-level checks: architecture geometry, full-model gradient checks
// through conv / graph / fusion paths, and eval-mode determinism.
#include <gtest/gtest.h>

#include "chem/conformer.h"
#include "chem/smiles.h"
#include "data/target.h"
#include "models/baselines.h"
#include "models/cnn3d.h"
#include "models/sgcnn.h"

namespace df::models {
namespace {

using core::Rng;
using core::Tensor;

data::Sample make_sample(Rng& rng, int grid_dim = 8) {
  chem::Molecule lig = chem::parse_smiles("CC(N)C(=O)O");
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  std::vector<chem::Atom> pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  chem::VoxelConfig vc;
  vc.grid_dim = grid_dim;
  chem::Voxelizer vox(vc);
  chem::GraphFeaturizer feat;
  data::Sample s;
  s.voxel = vox.voxelize(lig, pocket, {});
  s.graph = feat.featurize(lig, pocket);
  s.label = 6.5f;
  return s;
}

Cnn3dConfig small_cnn_config(int grid_dim = 8) {
  Cnn3dConfig cfg;
  cfg.grid_dim = grid_dim;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  cfg.dropout1 = 0.0f;  // deterministic for gradcheck
  cfg.dropout2 = 0.0f;
  return cfg;
}

SgcnnConfig small_sg_config() {
  SgcnnConfig cfg;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 12;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return cfg;
}

TEST(Cnn3d, PredictIsDeterministicInEval) {
  Rng rng(1);
  Cnn3d model(small_cnn_config(), rng);
  Rng srng(2);
  data::Sample s = make_sample(srng);
  const float a = model.predict(s);
  const float b = model.predict(s);
  EXPECT_FLOAT_EQ(a, b);
}

TEST(Cnn3d, LatentDimMatchesConfig) {
  Rng rng(2);
  Cnn3dConfig cfg = small_cnn_config();
  Cnn3d model(cfg, rng);
  Rng srng(3);
  data::Sample s = make_sample(srng);
  Tensor latent = model.forward_latent(s.voxel, false);
  EXPECT_EQ(latent.shape(), (std::vector<int64_t>{1, cfg.dense_nodes / 2}));
  EXPECT_EQ(model.latent_dim(), cfg.dense_nodes / 2);
}

TEST(Cnn3d, GradCheckThroughWholeNetwork) {
  Rng rng(3);
  Cnn3d model(small_cnn_config(), rng);
  Rng srng(4);
  data::Sample s = make_sample(srng);
  model.set_training(true);
  model.zero_grad();
  model.forward_train(s);
  model.backward(1.0f);

  const float eps = 2e-2f;
  int checked = 0;
  for (nn::Parameter* p : model.trainable_parameters()) {
    // Probe the strongest-gradient element: it sits on an active path away
    // from ReLU kinks, where central differences are valid.
    int64_t i = 0;
    for (int64_t k = 1; k < p->value.numel(); ++k) {
      if (std::abs(p->grad[k]) > std::abs(p->grad[i])) i = k;
    }
    if (p->grad[i] == 0.0f) continue;  // dead path: FD would probe a kink
    const float orig = p->value[i];
    p->value[i] = orig + eps;
    const float lp = model.forward_train(s);
    p->value[i] = orig - eps;
    const float lm = model.forward_train(s);
    p->value[i] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    const float analytic = p->grad[i];
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic)});
    EXPECT_NEAR(analytic / scale, numeric / scale, 4e-2f) << p->name;
    ++checked;
  }
  EXPECT_GT(checked, 8);
}

TEST(Cnn3d, ResidualOptionsChangeParameterCount) {
  Rng rng(4);
  Cnn3dConfig with = small_cnn_config();
  Cnn3dConfig without = small_cnn_config();
  without.residual2 = false;
  // Residual wrapping doesn't change counts (same conv inside), but batch
  // norm does; verify BN toggle adds parameters.
  Cnn3dConfig bn = small_cnn_config();
  bn.batch_norm = true;
  Cnn3d m1(with, rng), m2(without, rng), m3(bn, rng);
  EXPECT_EQ(m1.num_parameters(), m2.num_parameters());
  EXPECT_GT(m3.num_parameters(), m1.num_parameters());
}

TEST(Sgcnn, PredictIsDeterministicInEval) {
  Rng rng(5);
  Sgcnn model(small_sg_config(), rng);
  Rng srng(6);
  data::Sample s = make_sample(srng);
  EXPECT_FLOAT_EQ(model.predict(s), model.predict(s));
}

TEST(Sgcnn, LatentDimFollowsGatherWidthRule) {
  Rng rng(7);
  SgcnnConfig cfg;
  cfg.noncovalent_gather_width = 128;
  Sgcnn model(cfg, rng);
  // dense1 = 128 / 1.5 = 85 (the paper's reduce-by-1.5 rule)
  EXPECT_EQ(model.latent_dim(), 85);
}

TEST(Sgcnn, GradCheckThroughWholeNetwork) {
  Rng rng(8);
  Sgcnn model(small_sg_config(), rng);
  Rng srng(9);
  data::Sample s = make_sample(srng);
  model.set_training(true);
  model.zero_grad();
  model.forward_train(s);
  model.backward(1.0f);

  const float eps = 2e-2f;
  for (nn::Parameter* p : model.trainable_parameters()) {
    int64_t i = 0;
    for (int64_t k = 1; k < p->value.numel(); ++k) {
      if (std::abs(p->grad[k]) > std::abs(p->grad[i])) i = k;
    }
    if (p->grad[i] == 0.0f) continue;
    const float orig = p->value[i];
    p->value[i] = orig + eps;
    const float lp = model.forward_train(s);
    p->value[i] = orig - eps;
    const float lm = model.forward_train(s);
    p->value[i] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    const float analytic = p->grad[i];
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic)});
    EXPECT_NEAR(analytic / scale, numeric / scale, 4e-2f) << p->name;
  }
}

TEST(Sgcnn, EmptyGraphThrows) {
  Rng rng(10);
  Sgcnn model(small_sg_config(), rng);
  data::Sample s;
  s.graph = graph::SpatialGraph{};
  EXPECT_THROW(model.predict(s), std::invalid_argument);
}

TEST(Baselines, DistinctArchitectures) {
  Rng rng(11);
  auto paf = make_pafnucy(16, 8, rng);
  auto kdeep = make_kdeep(16, 8, rng);
  EXPECT_NE(paf->num_parameters(), kdeep->num_parameters());
  EXPECT_FALSE(paf->config().residual2);
  EXPECT_TRUE(kdeep->config().batch_norm);
}

TEST(Baselines, ProduceFinitePredictions) {
  Rng rng(12);
  Rng srng(13);
  data::Sample s = make_sample(srng);
  auto paf = make_pafnucy(16, 8, rng);
  auto kdeep = make_kdeep(16, 8, rng);
  EXPECT_TRUE(std::isfinite(paf->predict(s)));
  EXPECT_TRUE(std::isfinite(kdeep->predict(s)));
}

}  // namespace
}  // namespace df::models
