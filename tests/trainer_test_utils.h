// Shared fixtures for the training-engine property tests: tiny featurized
// corpora, model builders with matching replica factories, and the bitwise
// TrainResult/parameter comparison — so "identical training run" means the
// same thing in test_trainer_parallel and test_trainer_resume (the same
// role campaign_test_utils.h plays for the campaign suites).
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "data/splits.h"
#include "models/fusion.h"
#include "models/trainer.h"

namespace df::models::testutil {

/// The datasets hold a pointer to `recs`, so a Corpus must never be moved
/// or copied after construction — hand it around by unique_ptr.
struct Corpus {
  std::vector<data::ComplexRecord> recs;
  std::unique_ptr<data::ComplexDataset> train;
  std::unique_ptr<data::ComplexDataset> val;

  Corpus() = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
};

/// Tiny corpus; `augment` turns on the rotation augmentation of the train
/// split so the loader's per-(epoch, position) featurization streams are
/// part of what the determinism pins cover. The val fraction is generous
/// because an empty validation set would silently reduce the val_mse pins
/// to comparing zeros; callers still ASSERT on val->size().
inline std::unique_ptr<Corpus> make_corpus(int n, uint64_t seed, bool augment = false) {
  auto c = std::make_unique<Corpus>();
  data::PdbbindConfig cfg;
  cfg.num_complexes = n;
  cfg.core_size = 2;
  cfg.settle_runs = 1;
  cfg.settle_steps = 4;
  core::Rng rng(seed);
  c->recs = data::SyntheticPdbbind(cfg).generate(rng);
  data::TrainValSplit split = data::pdbbind_train_val(c->recs, 0.5f, rng);
  data::DatasetConfig train_dc;
  train_dc.voxel.grid_dim = 8;
  train_dc.rotation_augment = augment;
  train_dc.rotation_prob = 0.5f;
  data::DatasetConfig val_dc;
  val_dc.voxel.grid_dim = 8;
  c->train = std::make_unique<data::ComplexDataset>(&c->recs, split.train, train_dc);
  c->val = std::make_unique<data::ComplexDataset>(&c->recs, split.val, val_dc);
  return c;
}

inline SgcnnConfig tiny_sg() {
  SgcnnConfig cfg;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 16;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return cfg;
}

/// Dropout ON: the keyed per-sample mask streams are part of the contract.
inline Cnn3dConfig tiny_cnn() {
  Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  cfg.dropout1 = 0.25f;
  cfg.dropout2 = 0.125f;
  return cfg;
}

inline FusionConfig tiny_fusion() {
  FusionConfig cfg;
  cfg.kind = FusionKind::Coherent;
  cfg.fusion_nodes = 8;
  cfg.num_fusion_layers = 3;
  cfg.dropout1 = 0.3f;
  cfg.dropout2 = 0.2f;
  cfg.dropout3 = 0.1f;
  return cfg;
}

inline RegressorFactory sg_factory(uint64_t seed = 2) {
  return [seed] {
    core::Rng rng(seed);
    return std::make_unique<Sgcnn>(tiny_sg(), rng);
  };
}

inline RegressorFactory cnn_factory(uint64_t seed = 3) {
  return [seed] {
    core::Rng rng(seed);
    return std::make_unique<Cnn3d>(tiny_cnn(), rng);
  };
}

inline RegressorFactory fusion_factory(uint64_t seed = 4) {
  return [seed]() -> std::unique_ptr<Regressor> {
    core::Rng rng(seed);
    auto cnn = std::make_shared<Cnn3d>(tiny_cnn(), rng);
    auto sg = std::make_shared<Sgcnn>(tiny_sg(), rng);
    return std::make_unique<FusionModel>(tiny_fusion(), cnn, sg, rng);
  };
}

inline uint32_t float_bits(float v) { return std::bit_cast<uint32_t>(v); }

/// Bitwise TrainResult equality, wall clock excluded (the one field that
/// legitimately differs between runs).
inline void expect_results_bitwise_equal(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(float_bits(a.epochs[e].train_mse), float_bits(b.epochs[e].train_mse))
        << "train_mse differs at epoch " << e;
    EXPECT_EQ(float_bits(a.epochs[e].val_mse), float_bits(b.epochs[e].val_mse))
        << "val_mse differs at epoch " << e;
  }
  EXPECT_EQ(float_bits(a.best_val_mse), float_bits(b.best_val_mse));
  EXPECT_EQ(a.best_epoch, b.best_epoch);
}

inline void expect_parameters_bitwise_equal(Regressor& a, Regressor& b) {
  const std::vector<nn::Parameter*> pa = a.trainable_parameters();
  const std::vector<nn::Parameter*> pb = b.trainable_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.shape(), pb[i]->value.shape()) << "param " << i;
    int64_t diffs = 0;
    for (int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      if (float_bits(pa[i]->value[j]) != float_bits(pb[i]->value[j])) ++diffs;
    }
    EXPECT_EQ(diffs, 0) << "param " << i << " (" << pa[i]->name << ") differs";
  }
}

}  // namespace df::models::testutil
