#include <gtest/gtest.h>

#include "chem/conformer.h"
#include "chem/smiles.h"
#include "data/target.h"
#include "dock/docking.h"
#include "dock/pose.h"
#include "dock/scoring.h"

namespace df::dock {
namespace {

using core::Rng;
using core::Vec3;

Molecule small_ligand(Rng& rng) {
  Molecule m = chem::parse_smiles("CC(N)C(=O)O");
  chem::embed_conformer(m, rng);
  m.translate(Vec3{} - m.centroid());
  return m;
}

TEST(Scoring, EmptyPocketScoresZero) {
  Rng rng(1);
  Molecule lig = small_ligand(rng);
  EXPECT_FLOAT_EQ(vina_score(lig, {}), 0.0f);
}

TEST(Scoring, ContactBeatsIsolation) {
  // A ligand in contact with a pocket must score better (more negative)
  // than the same ligand 50 A away.
  Rng rng(2);
  Molecule lig = small_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({4.5f, 40, 0.6f, 0.5f, 0.1f}, rng);
  const float near = vina_score(lig, pocket);
  Molecule far = lig;
  far.translate({50, 0, 0});
  const float far_score = vina_score(far, pocket);
  EXPECT_LT(near, far_score);
  EXPECT_FLOAT_EQ(far_score, 0.0f);
}

TEST(Scoring, ClashIsPenalized) {
  // Overlapping atoms: repulsion term must dominate.
  Molecule lig;
  lig.add_atom(chem::Element::C, {0, 0, 0});
  std::vector<Atom> pocket{Atom{chem::Element::C, Vec3{0.1f, 0, 0}, 0, false, 0}};
  const TermBreakdown t = score_terms(lig, pocket);
  EXPECT_GT(t.repulsion, 1.0f);
  EXPECT_GT(vina_score(lig, pocket), 0.0f);  // net unfavorable
}

TEST(Scoring, HydrophobicPairsContribute) {
  Molecule lig;
  lig.add_atom(chem::Element::C, {0, 0, 0});
  // carbon at ideal contact distance (surface distance ~0.2)
  std::vector<Atom> c_pocket{Atom{chem::Element::C, Vec3{3.6f, 0, 0}, 0, false, 0}};
  std::vector<Atom> o_pocket{Atom{chem::Element::O, Vec3{3.6f, 0, 0}, 0, false, 0}};
  EXPECT_GT(score_terms(lig, c_pocket).hydrophobic, 0.0f);
  EXPECT_FLOAT_EQ(score_terms(lig, o_pocket).hydrophobic, 0.0f);
}

TEST(Scoring, HbondRequiresDonorAcceptorPair) {
  Molecule lig;
  lig.add_atom(chem::Element::O, {0, 0, 0});
  lig.atoms()[0].implicit_h = 1;  // donor OH
  std::vector<Atom> acceptor{Atom{chem::Element::N, Vec3{2.6f, 0, 0}, 0, false, 0}};
  std::vector<Atom> carbon{Atom{chem::Element::C, Vec3{2.6f, 0, 0}, 0, false, 0}};
  EXPECT_GT(score_terms(lig, acceptor).hbond, 0.0f);
  EXPECT_FLOAT_EQ(score_terms(lig, carbon).hbond, 0.0f);
}

TEST(Scoring, RotorPenaltyDampens) {
  Rng rng(3);
  std::vector<Atom> pocket = data::make_pocket({4.5f, 40, 0.6f, 0.5f, 0.1f}, rng);
  Molecule rigid = chem::parse_smiles("c1ccccc1");
  chem::embed_conformer(rigid, rng);
  rigid.translate(Vec3{} - rigid.centroid());
  VinaWeights w;
  const float with_penalty = vina_score(rigid, pocket, w);
  w.rotor = 0.0f;
  const float without = vina_score(rigid, pocket, w);
  // Benzene has no rotors: identical either way.
  EXPECT_FLOAT_EQ(with_penalty, without);
}

TEST(Scoring, ScoreToPkPositiveForFavorable) {
  EXPECT_GT(score_to_pk(-8.0f), 0.0f);
  EXPECT_NEAR(score_to_pk(-1.365f), 1.0f, 1e-3f);  // -RT ln10 per pK unit
}

TEST(Pose, ApplyPlacesCentroid) {
  Rng rng(4);
  Molecule lig = small_ligand(rng);
  Pose p;
  p.translation = {1, 2, 3};
  p.axis = {0, 0, 1};
  p.angle = 1.0f;
  Molecule placed = p.apply(lig, {10, 0, 0});
  const Vec3 c = placed.centroid();
  EXPECT_NEAR(c.x, 11.0f, 1e-3f);
  EXPECT_NEAR(c.y, 2.0f, 1e-3f);
  EXPECT_NEAR(c.z, 3.0f, 1e-3f);
}

TEST(Pose, RotationPreservesInternalGeometry) {
  Rng rng(5);
  Molecule lig = small_ligand(rng);
  Pose p = random_pose(rng, 3.0f);
  Molecule placed = p.apply(lig, {});
  // bond lengths invariant under rigid transform
  for (const chem::Bond& b : lig.bonds()) {
    const float before = lig.atoms()[static_cast<size_t>(b.a)].pos.dist(
        lig.atoms()[static_cast<size_t>(b.b)].pos);
    const float after = placed.atoms()[static_cast<size_t>(b.a)].pos.dist(
        placed.atoms()[static_cast<size_t>(b.b)].pos);
    EXPECT_NEAR(before, after, 1e-4f);
  }
}

TEST(Docking, ReturnsSortedDedupedPoses) {
  Rng rng(6);
  Molecule lig = small_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 48, 0.65f, 0.5f, 0.1f}, rng);
  DockingConfig cfg;
  cfg.num_runs = 6;
  cfg.steps_per_run = 60;
  DockingEngine engine(cfg);
  DockingResult res = engine.dock(lig, pocket, {}, rng);
  ASSERT_FALSE(res.poses.empty());
  for (size_t i = 1; i < res.poses.size(); ++i) {
    EXPECT_LE(res.poses[i - 1].score, res.poses[i].score);
  }
  for (size_t i = 0; i < res.conformers.size(); ++i) {
    for (size_t j = i + 1; j < res.conformers.size(); ++j) {
      EXPECT_GE(chem::pose_rmsd(res.conformers[i], res.conformers[j]), cfg.dedup_rmsd);
    }
  }
  EXPECT_EQ(res.total_evaluations, cfg.num_runs * (cfg.steps_per_run + 1));
}

TEST(Docking, FindsBetterThanRandomPlacement) {
  Rng rng(7);
  Molecule lig = small_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 48, 0.65f, 0.5f, 0.1f}, rng);
  DockingConfig cfg;
  cfg.num_runs = 4;
  cfg.steps_per_run = 120;
  DockingEngine engine(cfg);
  DockingResult res = engine.dock(lig, pocket, {}, rng);
  // Average random-pose score as baseline.
  float random_avg = 0.0f;
  for (int i = 0; i < 20; ++i) {
    Pose p = random_pose(rng, cfg.box_half);
    random_avg += vina_score(p.apply(lig, {}), pocket);
  }
  random_avg /= 20.0f;
  EXPECT_LT(res.poses.front().score, random_avg);
}

TEST(Docking, RespectsMaxPoses) {
  Rng rng(8);
  Molecule lig = small_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 40, 0.6f, 0.5f, 0.1f}, rng);
  DockingConfig cfg;
  cfg.num_runs = 12;
  cfg.steps_per_run = 30;
  cfg.max_poses = 3;
  cfg.dedup_rmsd = 0.0f;  // keep everything
  DockingResult res = DockingEngine(cfg).dock(lig, pocket, {}, rng);
  EXPECT_LE(res.poses.size(), 3u);
}

}  // namespace
}  // namespace df::dock
