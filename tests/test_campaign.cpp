#include <gtest/gtest.h>

#include "models/sgcnn.h"
#include "screen/campaign.h"

namespace df::screen {
namespace {

using core::Rng;

CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.job.nodes = 1;
  cfg.job.gpus_per_node = 2;
  cfg.job.voxel.grid_dim = 8;
  cfg.poses_per_job = 40;
  cfg.pipeline.docking.num_runs = 3;
  cfg.pipeline.docking.steps_per_run = 25;
  cfg.pipeline.docking.max_poses = 3;
  cfg.pipeline.rescore_top_n = 1;
  return cfg;
}

ModelFactory sg_factory() {
  return [] {
    Rng rng(31);
    models::SgcnnConfig cfg;
    cfg.covalent_gather_width = 8;
    cfg.noncovalent_gather_width = 12;
    cfg.covalent_k = 2;
    cfg.noncovalent_k = 2;
    return std::make_unique<models::Sgcnn>(cfg, rng);
  };
}

TEST(Campaign, EndToEndProducesPerTargetResults) {
  Rng rng(1);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Protease1, rng),
                                       data::make_target(data::TargetKind::Spike1, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::Enamine, 6), rng);
  ScreeningCampaign campaign(small_campaign(), targets);
  const CampaignReport report = campaign.run(compounds, sg_factory());

  EXPECT_GT(report.poses_generated, 0);
  EXPECT_GT(report.jobs_run, 0);
  EXPECT_FALSE(report.results.empty());
  // Each surviving compound appears once per target.
  const int expected = (6 - report.compounds_rejected) * 2;
  EXPECT_EQ(static_cast<int>(report.results.size()), expected);

  for (const auto& r : report.results) {
    EXPECT_GE(r.poses, 1);
    EXPECT_TRUE(std::isfinite(r.fusion_pk));
    EXPECT_TRUE(std::isfinite(r.vina_score));
    EXPECT_GE(r.true_pk, 2.0f);
    EXPECT_LE(r.true_pk, 11.5f);
    EXPECT_GE(r.percent_inhibition, 0.0f);
    EXPECT_LE(r.percent_inhibition, 100.0f);
    EXPECT_TRUE(r.target_index == 0 || r.target_index == 1);
  }
}

TEST(Campaign, FaultToleranceRetriesFailedJobs) {
  Rng rng(2);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Spike2, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::Enamine, 5), rng);
  CampaignConfig cfg = small_campaign();
  cfg.job.nodes = 8;  // 20% failure probability
  cfg.job.gpus_per_node = 1;
  cfg.job.inject_failures = true;
  cfg.poses_per_job = 3;  // many jobs -> failures near-certain
  // Failure injection is deterministic per seed; scan a few campaign seeds
  // until one exhibits a failure (p(no failure) per campaign is small).
  CampaignReport report;
  bool saw_failure = false;
  for (uint64_t seed = 0; seed < 8 && !saw_failure; ++seed) {
    cfg.seed = seed;
    ScreeningCampaign campaign(cfg, targets);
    report = campaign.run(compounds, sg_factory());
    saw_failure = report.jobs_failed > 0;
  }
  // Retries keep total coverage complete despite failures.
  EXPECT_TRUE(saw_failure);
  EXPECT_GT(report.jobs_run, report.jobs_failed);
  EXPECT_FALSE(report.results.empty());
  for (const auto& r : report.results) EXPECT_TRUE(std::isfinite(r.fusion_pk));
}

TEST(Campaign, RejectedCompoundsTracked) {
  Rng rng(3);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Protease2, rng)};
  // ZINC profile has metal contaminants that ligand prep rejects.
  auto lib_cfg = data::default_library(data::LibrarySource::ZINC, 30);
  lib_cfg.gen.metal_probability = 0.5f;
  const auto compounds = data::generate_library(lib_cfg, rng);
  ScreeningCampaign campaign(small_campaign(), targets);
  const CampaignReport report = campaign.run(compounds, sg_factory());
  EXPECT_GT(report.compounds_rejected, 0);
  EXPECT_EQ(report.results.size(),
            static_cast<size_t>(30 - report.compounds_rejected));
}

TEST(Campaign, AggregationUsesStrongestPose) {
  Rng rng(4);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Protease1, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::Enamine, 4), rng);
  ScreeningCampaign campaign(small_campaign(), targets);
  const CampaignReport report = campaign.run(compounds, sg_factory());
  for (const auto& r : report.results) {
    // vina_score is a minimum over poses: must be <= 0 in contact or at
    // least finite; fusion_pk is a max: must be >= any plausible floor.
    EXPECT_LT(r.vina_score, 1e29f);
    EXPECT_GT(r.fusion_pk, -1e29f);
  }
}

}  // namespace
}  // namespace df::screen
