// ScoreServer / ScoreClient pins: the socket path must be a transparent
// skin over ScoringService — scores bit-identical to in-process submission,
// typed errors passing through un-retried, transport faults retried then
// surfaced as kTransport, per-request deadlines resolving kTimeout through
// the wire, drain/ping/shutdown control semantics, and protocol garbage
// counted without taking the server down.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chem/conformer.h"
#include "models/sgcnn.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace df {
namespace {

using core::Rng;

chem::VoxelConfig tiny_voxel() {
  chem::VoxelConfig cfg;
  cfg.grid_dim = 8;
  return cfg;
}

models::RegressorFactory tiny_sg_factory() {
  return [] {
    Rng rng(42);
    models::SgcnnConfig cfg;
    cfg.covalent_k = 2;
    cfg.noncovalent_k = 2;
    cfg.covalent_gather_width = 8;
    cfg.noncovalent_gather_width = 16;
    return std::make_unique<models::Sgcnn>(cfg, rng);
  };
}

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

class GatedScorer : public serve::Scorer {
 public:
  explicit GatedScorer(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}
  std::string name() const override { return "gated"; }
  std::vector<float> score(const std::vector<const serve::PoseInput*>& poses) override {
    gate_->wait();
    return std::vector<float>(poses.size(), 1.0f);
  }

 private:
  std::shared_ptr<Gate> gate_;
};

std::vector<chem::Atom> make_pocket(uint64_t seed) {
  Rng rng(seed);
  chem::Molecule m = chem::generate_molecule({}, rng);
  chem::embed_conformer(m, rng);
  return m.atoms();
}

std::vector<serve::PoseInput> make_poses(int n, const std::vector<chem::Atom>* pocket,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::PoseInput> poses;
  poses.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = pocket;
    poses.push_back(std::move(p));
  }
  return poses;
}

serve::ModelRegistry sg_registry() {
  serve::ModelRegistry reg;
  serve::add_regressor(reg, "sgcnn", tiny_sg_factory(), tiny_voxel());
  return reg;
}

serve::ServiceConfig ordered_config(int workers, int poses_per_batch = 4) {
  serve::ServiceConfig sc;
  sc.workers = workers;
  sc.poses_per_batch = poses_per_batch;
  sc.ordered_stream = true;
  return sc;
}

serve::ClientConfig client_for(const serve::ScoreServer& server) {
  serve::ClientConfig cc;
  cc.port = server.port();
  cc.connect_timeout_ms = 2000;
  cc.backoff_base_ms = 1;
  cc.backoff_max_ms = 10;
  return cc;
}

// ---- hello / identity ---------------------------------------------------

TEST(ScoreServer, HelloAdvertisesServiceShape) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(2));
  serve::ServerConfig cfg;
  cfg.node_id = "test-node";
  serve::ScoreServer server(service, cfg);
  ASSERT_GT(server.port(), 0);

  serve::ScoreClient client(client_for(server));
  serve::wire::HelloPayload hello;
  std::string error;
  ASSERT_TRUE(client.hello(&hello, &error)) << error;
  EXPECT_EQ(hello.node_id, "test-node");
  EXPECT_TRUE(hello.ordered_stream);
  EXPECT_EQ(hello.poses_per_batch, 4u);
  EXPECT_EQ(hello.workers, 2u);
  ASSERT_EQ(hello.scorers.size(), 1u);
  EXPECT_EQ(hello.scorers[0], "sgcnn");
}

// ---- the determinism anchor ---------------------------------------------

TEST(ScoreServer, WireScoresBitIdenticalToInProcess) {
  const std::vector<chem::Atom> pocket = make_pocket(7);
  // 11 poses with batch 4: exercises full and ragged chunks.
  const std::vector<serve::PoseInput> poses = make_poses(11, &pocket, 8);

  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(2));
  serve::ScoreRequest req;
  req.scorer = "sgcnn";
  req.poses = poses;
  const serve::ScoreResponse direct = service.score(req);
  ASSERT_EQ(direct.error, serve::ScoreError::kNone);

  serve::ScoreServer server(service);
  serve::ScoreClient client(client_for(server));
  serve::ScoreRequest wire_req;
  wire_req.scorer = "sgcnn";
  wire_req.poses = poses;
  const serve::ScoreResponse remote = client.score(wire_req);
  ASSERT_EQ(remote.error, serve::ScoreError::kNone) << remote.message;

  ASSERT_EQ(remote.scores.size(), direct.scores.size());
  for (size_t i = 0; i < direct.scores.size(); ++i) {
    uint32_t a, b;
    std::memcpy(&a, &direct.scores[i], 4);
    std::memcpy(&b, &remote.scores[i], 4);
    EXPECT_EQ(a, b) << "pose " << i << " scored differently over the wire";
  }
  // The response streamed: 11 poses over batch-4 chunks = 3 chunk frames.
  EXPECT_EQ(client.stats().chunks, 3u);
  EXPECT_EQ(server.stats().chunks, 3u);
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().poses, 11u);
}

// ---- typed errors through the wire --------------------------------------

TEST(ScoreServer, UnknownScorerPassesThroughTypedAndUnretried) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(1));
  serve::ScoreServer server(service);
  serve::ScoreClient client(client_for(server));

  const std::vector<chem::Atom> pocket = make_pocket(1);
  serve::ScoreRequest req;
  req.scorer = "nonexistent";
  req.poses = make_poses(2, &pocket, 2);
  const serve::ScoreResponse resp = client.score(req);
  EXPECT_EQ(resp.error, serve::ScoreError::kUnknownScorer);
  EXPECT_TRUE(resp.scores.empty());
  // A server verdict is not a fault: exactly one wire attempt, no retries.
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ScoreClient, DeadEndpointRetriesWithBackoffThenTransport) {
  serve::ClientConfig cc;
  cc.port = 1;  // nothing listens there
  cc.connect_timeout_ms = 200;
  cc.max_retries = 2;
  cc.backoff_base_ms = 1;
  cc.backoff_max_ms = 5;
  serve::ScoreClient client(cc);

  const std::vector<chem::Atom> pocket = make_pocket(3);
  serve::ScoreRequest req;
  req.scorer = "sgcnn";
  req.poses = make_poses(1, &pocket, 4);
  const serve::ScoreResponse resp = client.score(req);
  EXPECT_EQ(resp.error, serve::ScoreError::kTransport);
  const serve::ClientStats stats = client.stats();
  EXPECT_EQ(stats.transport_failures, 3u);  // initial try + 2 retries
  EXPECT_EQ(stats.retries, 2u);
}

TEST(ScoreServer, RequestDeadlineResolvesTimeoutThroughTheWire) {
  auto gate = std::make_shared<Gate>();
  serve::ModelRegistry reg;
  reg.add("gated", [gate] { return std::make_unique<GatedScorer>(gate); });
  serve::ScoringService service(reg, ordered_config(1));
  serve::ScoreServer server(service);
  serve::ScoreClient client(client_for(server));

  const std::vector<chem::Atom> pocket = make_pocket(5);
  // Occupy the single worker with a gated request submitted in-process.
  serve::ScoreRequest blocker;
  blocker.scorer = "gated";
  blocker.poses = make_poses(1, &pocket, 6);
  auto blocked = service.submit(std::move(blocker));

  // The wire request queues behind it with a 50 ms deadline it cannot meet.
  serve::ScoreRequest req;
  req.scorer = "gated";
  req.poses = make_poses(1, &pocket, 7);
  req.deadline_ms = 50;
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    gate->release();
  });
  const serve::ScoreResponse resp = client.score(req);
  releaser.join();
  EXPECT_EQ(resp.error, serve::ScoreError::kTimeout) << resp.message;
  EXPECT_EQ(blocked.get().error, serve::ScoreError::kNone);
  EXPECT_GE(server.stats().timeouts, 1u);
}

// ---- control plane ------------------------------------------------------

TEST(ScoreServer, PingReportsHealthAndDrainFlag) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(1));
  serve::ScoreServer server(service);
  serve::ScoreClient client(client_for(server));

  serve::PingResult ping = client.ping(1000);
  ASSERT_EQ(ping.status, serve::PingResult::Status::kOk) << ping.error;
  EXPECT_FALSE(ping.pong.draining);
  EXPECT_EQ(ping.pong.inflight_requests, 0u);

  std::string error;
  ASSERT_TRUE(client.drain(2000, &error)) << error;
  EXPECT_TRUE(server.draining());
  ping = client.ping(1000);
  ASSERT_EQ(ping.status, serve::PingResult::Status::kOk) << ping.error;
  EXPECT_TRUE(ping.pong.draining);
}

TEST(ScoreServer, DrainingNodeRefusesNewWorkTyped) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(1));
  serve::ScoreServer server(service);
  server.drain();

  serve::ScoreClient client(client_for(server));
  const std::vector<chem::Atom> pocket = make_pocket(9);
  serve::ScoreRequest req;
  req.scorer = "sgcnn";
  req.poses = make_poses(1, &pocket, 10);
  const serve::ScoreResponse resp = client.score(req);
  EXPECT_EQ(resp.error, serve::ScoreError::kShutdown);
  EXPECT_EQ(client.stats().retries, 0u) << "a drain verdict must not be retried";
}

TEST(ScoreServer, ShutdownRequestRaisesFlagForHostBinary) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(1));
  serve::ScoreServer server(service);
  EXPECT_FALSE(server.shutdown_requested());

  serve::ScoreClient client(client_for(server));
  ASSERT_TRUE(client.request_shutdown());
  for (int i = 0; i < 100 && !server.shutdown_requested(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(server.shutdown_requested());
}

// ---- robustness ---------------------------------------------------------

TEST(ScoreServer, GarbageBytesCountedAndServerSurvives) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(1));
  serve::ScoreServer server(service);

  {
    std::string error;
    serve::net::TcpConn raw = serve::net::tcp_connect("127.0.0.1", server.port(), 1000, &error);
    ASSERT_TRUE(raw.open()) << error;
    // Swallow the Hello, then write 64 bytes of non-protocol noise.
    serve::wire::Frame hello;
    ASSERT_EQ(serve::wire::read_frame(raw, &hello, 2000), serve::wire::WireError::kNone);
    const std::string junk(64, 'Z');
    ASSERT_TRUE(raw.send_all(junk.data(), junk.size(), 1000));
  }
  // A well-behaved client still gets service afterwards.
  serve::ScoreClient client(client_for(server));
  const std::vector<chem::Atom> pocket = make_pocket(11);
  serve::ScoreRequest req;
  req.scorer = "sgcnn";
  req.poses = make_poses(2, &pocket, 12);
  EXPECT_EQ(client.score(req).error, serve::ScoreError::kNone);
  for (int i = 0; i < 100 && server.stats().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST(ScoreServer, LatencyHistogramTracksAnsweredRequests) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(2));
  serve::ScoreServer server(service);
  serve::ScoreClient client(client_for(server));

  const std::vector<chem::Atom> pocket = make_pocket(13);
  for (int i = 0; i < 5; ++i) {
    serve::ScoreRequest req;
    req.scorer = "sgcnn";
    req.poses = make_poses(3, &pocket, 14 + static_cast<uint64_t>(i));
    ASSERT_EQ(client.score(req).error, serve::ScoreError::kNone);
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.latency.count(), 5u);
  EXPECT_GT(stats.latency.p50_ms(), 0.0);
  EXPECT_GE(stats.latency.p99_ms(), stats.latency.p50_ms());
  // The service-level histogram ticks too (one entry per sub-request).
  EXPECT_GE(service.stats().latency.count(), 5u);
}

TEST(ScoreClient, ReconnectsAfterServerRestartOnSamePort) {
  serve::ModelRegistry reg = sg_registry();
  serve::ScoringService service(reg, ordered_config(1));
  const std::vector<chem::Atom> pocket = make_pocket(17);
  const std::vector<serve::PoseInput> poses = make_poses(3, &pocket, 18);

  auto server = std::make_unique<serve::ScoreServer>(service);
  const int port = server->port();
  serve::ClientConfig cc;
  cc.port = port;
  cc.connect_timeout_ms = 500;
  cc.max_retries = 1;
  cc.backoff_base_ms = 1;
  cc.backoff_max_ms = 5;
  serve::ScoreClient client(cc);

  serve::ScoreRequest req;
  req.scorer = "sgcnn";
  req.poses = poses;
  const serve::ScoreResponse first = client.score(req);
  ASSERT_EQ(first.error, serve::ScoreError::kNone);

  server->stop();
  server.reset();
  EXPECT_EQ(client.score(req).error, serve::ScoreError::kTransport);

  // Respawn on the same port (SO_REUSEADDR) — the client heals by itself.
  serve::ServerConfig cfg;
  cfg.port = port;
  server = std::make_unique<serve::ScoreServer>(service, cfg);
  const serve::ScoreResponse again = client.score(req);
  ASSERT_EQ(again.error, serve::ScoreError::kNone) << again.message;
  ASSERT_EQ(again.scores.size(), first.scores.size());
  for (size_t i = 0; i < first.scores.size(); ++i) {
    EXPECT_EQ(first.scores[i], again.scores[i]) << "restart changed score bits";
  }
}

}  // namespace
}  // namespace df
