#include <gtest/gtest.h>

#include "core/rng.h"
#include "stats/classification.h"
#include "stats/metrics.h"

namespace df::stats {
namespace {

TEST(Metrics, RmseMaeKnownValues) {
  std::vector<float> p{1, 2, 3}, t{1, 4, 3};
  EXPECT_NEAR(rmse(p, t), std::sqrt(4.0f / 3.0f), 1e-6f);
  EXPECT_NEAR(mae(p, t), 2.0f / 3.0f, 1e-6f);
}

TEST(Metrics, PerfectPrediction) {
  std::vector<float> v{1, 2, 3, 4};
  EXPECT_FLOAT_EQ(rmse(v, v), 0.0f);
  EXPECT_FLOAT_EQ(r_squared(v, v), 1.0f);
  EXPECT_FLOAT_EQ(pearson(v, v), 1.0f);
  EXPECT_FLOAT_EQ(spearman(v, v), 1.0f);
}

TEST(Metrics, AntiCorrelation) {
  std::vector<float> a{1, 2, 3, 4}, b{4, 3, 2, 1};
  EXPECT_FLOAT_EQ(pearson(a, b), -1.0f);
  EXPECT_FLOAT_EQ(spearman(a, b), -1.0f);
}

TEST(Metrics, SpearmanInvariantToMonotoneTransform) {
  std::vector<float> a{1, 2, 3, 4, 5};
  std::vector<float> b{1, 8, 27, 64, 125};  // a^3: nonlinear but monotone
  EXPECT_FLOAT_EQ(spearman(a, b), 1.0f);
  EXPECT_LT(pearson(a, b), 1.0f);
}

TEST(Metrics, RanksHandleTies) {
  std::vector<float> v{1, 2, 2, 3};
  const std::vector<float> r = ranks(v);
  EXPECT_FLOAT_EQ(r[0], 1.0f);
  EXPECT_FLOAT_EQ(r[1], 2.5f);
  EXPECT_FLOAT_EQ(r[2], 2.5f);
  EXPECT_FLOAT_EQ(r[3], 4.0f);
}

TEST(Metrics, ConstantInputGivesZeroCorrelation) {
  std::vector<float> c{2, 2, 2}, v{1, 2, 3};
  EXPECT_FLOAT_EQ(pearson(c, v), 0.0f);
  EXPECT_FLOAT_EQ(r_squared(v, c), 0.0f);
}

TEST(Metrics, EmptyOrMismatchedThrows) {
  std::vector<float> a{1}, b{1, 2}, e;
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  EXPECT_THROW(pearson(e, e), std::invalid_argument);
}

TEST(Metrics, RSquaredNegativeForBadModel) {
  std::vector<float> truth{1, 2, 3, 4};
  std::vector<float> bad{10, -10, 10, -10};
  EXPECT_LT(r_squared(bad, truth), 0.0f);
}

TEST(PrCurve, PerfectClassifier) {
  std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  std::vector<bool> labels{true, true, false, false};
  EXPECT_FLOAT_EQ(best_f1(scores, labels), 1.0f);
  EXPECT_FLOAT_EQ(average_precision(scores, labels), 1.0f);
}

TEST(PrCurve, MonotoneRecall) {
  core::Rng rng(1);
  std::vector<float> scores;
  std::vector<bool> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.3));
  }
  const auto curve = pr_curve(scores, labels);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_NEAR(curve.back().recall, 1.0f, 1e-6f);
  // final precision equals prevalence
  EXPECT_NEAR(curve.back().precision, positive_rate(labels), 1e-6f);
}

TEST(PrCurve, RandomScoresGivePrevalencePrecision) {
  core::Rng rng(2);
  std::vector<float> scores;
  std::vector<bool> labels;
  for (int i = 0; i < 3000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.2));
  }
  EXPECT_NEAR(average_precision(scores, labels), 0.2f, 0.05f);
}

TEST(PrCurve, TiesAbsorbedIntoOnePoint) {
  std::vector<float> scores{0.5f, 0.5f, 0.5f};
  std::vector<bool> labels{true, false, true};
  const auto curve = pr_curve(scores, labels);
  EXPECT_EQ(curve.size(), 1u);
}

TEST(Kappa, PerfectAgreementIsOne) {
  std::vector<bool> y{true, false, true, false};
  EXPECT_FLOAT_EQ(cohen_kappa(y, y), 1.0f);
}

TEST(Kappa, FrequencyMatchedRandomNearZero) {
  core::Rng rng(3);
  std::vector<bool> truth, pred;
  for (int i = 0; i < 20000; ++i) {
    truth.push_back(rng.bernoulli(0.3));
    pred.push_back(rng.bernoulli(0.3));  // random at matching frequency
  }
  EXPECT_NEAR(cohen_kappa(pred, truth), 0.0f, 0.03f);
}

TEST(Kappa, InvertedPredictorNegative) {
  std::vector<bool> truth{true, true, false, false};
  std::vector<bool> pred{false, false, true, true};
  EXPECT_LT(cohen_kappa(pred, truth), 0.0f);
}

TEST(PositiveRate, Basic) {
  std::vector<bool> l{true, false, false, true};
  EXPECT_FLOAT_EQ(positive_rate(l), 0.5f);
  EXPECT_FLOAT_EQ(positive_rate(std::vector<bool>{}), 0.0f);
}

}  // namespace
}  // namespace df::stats
