#include <gtest/gtest.h>

#include "chem/ligand_prep.h"
#include "data/assay.h"
#include "data/compound_library.h"

namespace df::data {
namespace {

using core::Rng;

TEST(Assay, OccupancyAtKdIsHalf) {
  // At concentration == Kd, occupancy is exactly 50%.
  // pk = 5 -> Kd = 10 uM; assay at 10 uM.
  EXPECT_NEAR(occupancy_percent(5.0f, 10.0f), 50.0f, 1e-3f);
}

TEST(Assay, StrongBinderSaturates) {
  EXPECT_GT(occupancy_percent(9.0f, 100.0f), 99.0f);
}

TEST(Assay, WeakBinderReadsNearZero) {
  EXPECT_LT(occupancy_percent(2.0f, 10.0f), 0.2f);
}

TEST(Assay, HigherConcentrationRaisesInhibition) {
  // The paper's caveat: Mpro assays at 100 uM let weaker binders show
  // higher inhibition than spike assays at 10 uM.
  EXPECT_GT(occupancy_percent(5.0f, 100.0f), occupancy_percent(5.0f, 10.0f));
}

TEST(Assay, OutputClampedTo0And100) {
  Rng rng(1);
  AssayConfig cfg;
  cfg.noise_sigma = 60.0f;  // huge noise to stress the clamp
  for (int i = 0; i < 200; ++i) {
    const float v = percent_inhibition(6.0f, 10.0f, rng, cfg);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 100.0f);
  }
}

TEST(Assay, DeadFractionReadsBelowLeak) {
  Rng rng(2);
  AssayConfig cfg;
  cfg.dead_fraction = 1.0f;  // all compounds dead
  cfg.dead_leak = 1.0f;
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(percent_inhibition(10.0f, 100.0f, rng, cfg), 1.0f);
  }
}

TEST(Assay, SignalSurvivesNoiseOnAverage) {
  Rng rng(3);
  AssayConfig cfg;
  cfg.dead_fraction = 0.0f;
  double strong = 0, weak = 0;
  for (int i = 0; i < 300; ++i) {
    strong += percent_inhibition(8.0f, 100.0f, rng, cfg);
    weak += percent_inhibition(3.0f, 100.0f, rng, cfg);
  }
  EXPECT_GT(strong / 300, weak / 300 + 30.0);
}

TEST(Library, NamesMatchPaperSources) {
  EXPECT_STREQ(library_name(LibrarySource::ZINC), "ZINC");
  EXPECT_STREQ(library_name(LibrarySource::ChEMBL), "ChEMBL");
  EXPECT_STREQ(library_name(LibrarySource::eMolecules), "eMolecules");
  EXPECT_STREQ(library_name(LibrarySource::Enamine), "Enamine");
}

TEST(Library, GeneratesRequestedCountWithIds) {
  Rng rng(4);
  const auto lib = generate_library(default_library(LibrarySource::Enamine, 25), rng);
  ASSERT_EQ(lib.size(), 25u);
  EXPECT_EQ(lib[0].id, "Enamine-0");
  EXPECT_EQ(lib[24].id, "Enamine-24");
}

TEST(Library, SmilesFormForEmoleculesAndEnamine) {
  Rng rng(5);
  for (LibrarySource s : {LibrarySource::eMolecules, LibrarySource::Enamine}) {
    const auto lib = generate_library(default_library(s, 5), rng);
    for (const auto& c : lib) {
      EXPECT_TRUE(c.is_smiles_entry);
      EXPECT_FALSE(c.smiles.empty());
      // Materialize parses the SMILES back into an isomorphic graph.
      const chem::Molecule m = materialize(c);
      EXPECT_EQ(m.num_atoms(), c.molecule.num_atoms());
      EXPECT_EQ(m.num_bonds(), c.molecule.num_bonds());
    }
  }
}

TEST(Library, SdfFormForZincAndChembl) {
  Rng rng(6);
  for (LibrarySource s : {LibrarySource::ZINC, LibrarySource::ChEMBL}) {
    const auto lib = generate_library(default_library(s, 5), rng);
    for (const auto& c : lib) {
      EXPECT_FALSE(c.is_smiles_entry);
      EXPECT_GT(materialize(c).num_atoms(), 0u);
    }
  }
}

TEST(Library, ZincHasMoreSaltsThanEnamine) {
  Rng rng(7);
  auto count_multifragment = [&](LibrarySource s) {
    int n = 0;
    const auto lib = generate_library(default_library(s, 200), rng);
    for (const auto& c : lib) {
      if (c.molecule.connected_components().size() > 1) ++n;
    }
    return n;
  };
  EXPECT_GT(count_multifragment(LibrarySource::ZINC),
            count_multifragment(LibrarySource::Enamine));
}

TEST(Library, PrepFiltersLibraryContaminants) {
  Rng rng(8);
  const auto lib = generate_library(default_library(LibrarySource::ZINC, 100), rng);
  int accepted = 0;
  for (const auto& c : lib) {
    if (chem::prepare_ligand(materialize(c), rng).has_value()) ++accepted;
  }
  // Most compounds survive prep; metal-containing ones are dropped.
  EXPECT_GT(accepted, 80);
  EXPECT_LE(accepted, 100);
}

}  // namespace
}  // namespace df::data
