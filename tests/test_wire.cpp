// Wire-protocol pins: frame layout, CRC/version/magic rejection, payload
// codec roundtrips (bitwise for every float), and the malformed-payload
// taxonomy. These are the "partial frame / flipped bit" rows of the network
// fault table in docs/TESTING.md — every corruption a chaos run can inflict
// on a frame must map to a typed WireError, never to garbage scores.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <thread>

#include "serve/net.h"
#include "serve/wire.h"

namespace wire = df::serve::wire;
namespace chem = df::chem;
using df::serve::net::TcpConn;

namespace {

/// Connected AF_UNIX pair wrapped as TcpConns — the frame I/O layer only
/// needs stream semantics, so tests skip the TCP handshake.
struct ConnPair {
  TcpConn a, b;
  ConnPair() {
    int fds[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = TcpConn(fds[0]);
    b = TcpConn(fds[1]);
  }
};

chem::Molecule tiny_molecule() {
  chem::Molecule m;
  const int32_t c = m.add_atom(chem::Element::C, {1.25f, -2.5f, 3.75f}, 0, true);
  const int32_t n = m.add_atom(chem::Element::N, {0.1f, 0.2f, 0.3f}, 1, false);
  const int32_t o = m.add_atom(chem::Element::O, {-4.0f, 5.0f, -6.0f}, -1, false);
  m.atoms()[static_cast<size_t>(c)].implicit_h = 3;
  m.add_bond(c, n, 2);
  m.add_bond(n, o, 1);
  return m;
}

}  // namespace

TEST(WireFrame, LayoutMagicVersionLengthCrc) {
  const std::string frame = wire::encode_frame(wire::FrameType::kPing, "abc");
  ASSERT_EQ(frame.size(), 12u + 3u + 4u);
  uint32_t magic, len;
  uint16_t version, type;
  std::memcpy(&magic, frame.data(), 4);
  std::memcpy(&version, frame.data() + 4, 2);
  std::memcpy(&type, frame.data() + 6, 2);
  std::memcpy(&len, frame.data() + 8, 4);
  EXPECT_EQ(magic, wire::kMagic);
  EXPECT_EQ(version, wire::kVersion);
  EXPECT_EQ(type, static_cast<uint16_t>(wire::FrameType::kPing));
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(frame.substr(12, 3), "abc");
}

TEST(WireFrame, RoundtripOverSocket) {
  ConnPair pair;
  ASSERT_TRUE(wire::write_frame(pair.a, wire::FrameType::kScoreChunk, "payload bytes", 1000));
  wire::Frame frame;
  ASSERT_EQ(wire::read_frame(pair.b, &frame, 1000), wire::WireError::kNone);
  EXPECT_EQ(frame.type, wire::FrameType::kScoreChunk);
  EXPECT_EQ(frame.payload, "payload bytes");
}

TEST(WireFrame, EmptyPayloadRoundtrips) {
  ConnPair pair;
  ASSERT_TRUE(wire::write_frame(pair.a, wire::FrameType::kDrain, {}, 1000));
  wire::Frame frame;
  ASSERT_EQ(wire::read_frame(pair.b, &frame, 1000), wire::WireError::kNone);
  EXPECT_EQ(frame.type, wire::FrameType::kDrain);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFrame, FlippedPayloadBitFailsCrc) {
  ConnPair pair;
  std::string frame = wire::encode_frame(wire::FrameType::kPong, "sensitive");
  frame[14] ^= 0x20;  // inside the payload
  ASSERT_TRUE(pair.a.send_all(frame.data(), frame.size(), 1000));
  wire::Frame out;
  EXPECT_EQ(wire::read_frame(pair.b, &out, 1000), wire::WireError::kBadCrc);
}

TEST(WireFrame, FlippedTypeBitFailsCrc) {
  ConnPair pair;
  std::string frame = wire::encode_frame(wire::FrameType::kPing, "x");
  frame[6] ^= 0x01;  // frame type is under the CRC too
  ASSERT_TRUE(pair.a.send_all(frame.data(), frame.size(), 1000));
  wire::Frame out;
  EXPECT_EQ(wire::read_frame(pair.b, &out, 1000), wire::WireError::kBadCrc);
}

TEST(WireFrame, BadMagicRejectedBeforePayload) {
  ConnPair pair;
  std::string frame = wire::encode_frame(wire::FrameType::kPing, "x");
  frame[0] = 'X';
  ASSERT_TRUE(pair.a.send_all(frame.data(), frame.size(), 1000));
  wire::Frame out;
  EXPECT_EQ(wire::read_frame(pair.b, &out, 1000), wire::WireError::kBadMagic);
}

TEST(WireFrame, VersionMismatchRejected) {
  ConnPair pair;
  std::string frame = wire::encode_frame(wire::FrameType::kPing, "x");
  const uint16_t bad_version = wire::kVersion + 1;
  std::memcpy(frame.data() + 4, &bad_version, 2);
  ASSERT_TRUE(pair.a.send_all(frame.data(), frame.size(), 1000));
  wire::Frame out;
  EXPECT_EQ(wire::read_frame(pair.b, &out, 1000), wire::WireError::kBadVersion);
}

TEST(WireFrame, OversizedLengthRejectedWithoutAllocation) {
  ConnPair pair;
  std::string frame = wire::encode_frame(wire::FrameType::kPing, "x");
  const uint32_t absurd = wire::kMaxPayload + 1;
  std::memcpy(frame.data() + 8, &absurd, 4);
  ASSERT_TRUE(pair.a.send_all(frame.data(), frame.size(), 1000));
  wire::Frame out;
  EXPECT_EQ(wire::read_frame(pair.b, &out, 1000), wire::WireError::kOversized);
}

TEST(WireFrame, PartialFrameThenCloseIsTornNotGarbage) {
  ConnPair pair;
  const std::string frame = wire::encode_frame(wire::FrameType::kScoreRequest, "truncated body");
  // Send the header plus a few payload bytes, then close mid-frame.
  ASSERT_TRUE(pair.a.send_all(frame.data(), 15, 1000));
  pair.a.close();
  wire::Frame out;
  const wire::WireError err = wire::read_frame(pair.b, &out, 1000);
  EXPECT_TRUE(err == wire::WireError::kTransport || err == wire::WireError::kClosed)
      << wire::wire_error_name(err);
}

TEST(WireFrame, IdleCloseIsOrderlyEof) {
  ConnPair pair;
  pair.a.close();
  wire::Frame out;
  EXPECT_EQ(wire::read_frame(pair.b, &out, 1000), wire::WireError::kClosed);
}

TEST(WireFrame, ReadTimesOutWhenPeerSilent) {
  ConnPair pair;
  wire::Frame out;
  EXPECT_EQ(wire::read_frame(pair.b, &out, 50), wire::WireError::kTimeout);
  EXPECT_TRUE(pair.b.timed_out());
}

TEST(WirePayload, HelloRoundtrip) {
  wire::HelloPayload hello;
  hello.node_id = "node-7";
  hello.ordered_stream = true;
  hello.poses_per_batch = 32;
  hello.workers = 4;
  hello.scorers = {"mmgbsa", "sgcnn", "vina_pk"};
  const wire::HelloPayload back = wire::HelloPayload::decode(hello.encode());
  EXPECT_EQ(back.version, wire::kVersion);
  EXPECT_EQ(back.node_id, hello.node_id);
  EXPECT_EQ(back.ordered_stream, hello.ordered_stream);
  EXPECT_EQ(back.poses_per_batch, hello.poses_per_batch);
  EXPECT_EQ(back.workers, hello.workers);
  EXPECT_EQ(back.scorers, hello.scorers);
}

TEST(WirePayload, ScoreChunkRoundtripIsBitwise) {
  wire::ScoreChunkPayload chunk;
  chunk.request_id = 0xDEADBEEFCAFEull;
  chunk.offset = 96;
  chunk.scores = {1.5f, -0.0f, 3.1415926f, 1e-38f, -7.25f};
  const wire::ScoreChunkPayload back = wire::ScoreChunkPayload::decode(chunk.encode());
  EXPECT_EQ(back.request_id, chunk.request_id);
  EXPECT_EQ(back.offset, chunk.offset);
  ASSERT_EQ(back.scores.size(), chunk.scores.size());
  for (size_t i = 0; i < chunk.scores.size(); ++i) {
    uint32_t a, b;
    std::memcpy(&a, &chunk.scores[i], 4);
    std::memcpy(&b, &back.scores[i], 4);
    EXPECT_EQ(a, b) << "score " << i << " changed bits over the wire";
  }
}

TEST(WirePayload, ScoreDoneRoundtrip) {
  wire::ScoreDonePayload done;
  done.request_id = 42;
  done.error = df::serve::ScoreError::kTimeout;
  done.message = "deadline expired";
  done.micro_batches = 7;
  done.coalesced = true;
  done.chunks = 3;
  const wire::ScoreDonePayload back = wire::ScoreDonePayload::decode(done.encode());
  EXPECT_EQ(back.request_id, done.request_id);
  EXPECT_EQ(back.error, done.error);
  EXPECT_EQ(back.message, done.message);
  EXPECT_EQ(back.micro_batches, done.micro_batches);
  EXPECT_EQ(back.coalesced, done.coalesced);
  EXPECT_EQ(back.chunks, done.chunks);
}

TEST(WirePayload, PingPongRoundtrip) {
  wire::PingPayload ping;
  ping.nonce = 0x1234567890ABCDEFull;
  EXPECT_EQ(wire::PingPayload::decode(ping.encode()).nonce, ping.nonce);

  wire::PongPayload pong;
  pong.nonce = 99;
  pong.draining = true;
  pong.inflight_requests = 5;
  pong.requests = 1000;
  pong.poses = 32000;
  pong.p50_ms = 1.024f;
  pong.p99_ms = 16.384f;
  const wire::PongPayload back = wire::PongPayload::decode(pong.encode());
  EXPECT_EQ(back.nonce, pong.nonce);
  EXPECT_EQ(back.draining, pong.draining);
  EXPECT_EQ(back.inflight_requests, pong.inflight_requests);
  EXPECT_EQ(back.requests, pong.requests);
  EXPECT_EQ(back.poses, pong.poses);
  EXPECT_EQ(back.p50_ms, pong.p50_ms);
  EXPECT_EQ(back.p99_ms, pong.p99_ms);
}

TEST(WirePayload, MoleculeRoundtripPreservesEveryField) {
  const chem::Molecule m = tiny_molecule();
  df::serve::ScoreRequest req;
  req.scorer = "sgcnn";
  df::serve::PoseInput pose;
  pose.ligand = m;
  pose.site_center = {0.5f, 1.5f, -2.5f};
  req.poses.push_back(pose);

  const wire::ScoreRequestPayload payload =
      wire::ScoreRequestPayload::decode(wire::pack_request(req, 1).encode());
  ASSERT_EQ(payload.poses.size(), 1u);
  const chem::Molecule& back = payload.poses[0].ligand;
  ASSERT_EQ(back.num_atoms(), m.num_atoms());
  ASSERT_EQ(back.num_bonds(), m.num_bonds());
  for (size_t i = 0; i < m.num_atoms(); ++i) {
    const chem::Atom& x = m.atoms()[i];
    const chem::Atom& y = back.atoms()[i];
    EXPECT_EQ(x.element, y.element);
    EXPECT_EQ(x.pos.x, y.pos.x);
    EXPECT_EQ(x.pos.y, y.pos.y);
    EXPECT_EQ(x.pos.z, y.pos.z);
    EXPECT_EQ(x.formal_charge, y.formal_charge);
    EXPECT_EQ(x.aromatic, y.aromatic);
    EXPECT_EQ(x.implicit_h, y.implicit_h);
  }
  for (size_t i = 0; i < m.num_bonds(); ++i) {
    EXPECT_EQ(m.bonds()[i].a, back.bonds()[i].a);
    EXPECT_EQ(m.bonds()[i].b, back.bonds()[i].b);
    EXPECT_EQ(m.bonds()[i].order, back.bonds()[i].order);
  }
  // Adjacency must be rebuilt, not just stored: degree comes from add_bond.
  EXPECT_EQ(back.degree(1), 2);
}

TEST(WirePayload, PackRequestDedupesSharedPockets) {
  const std::vector<chem::Atom> site_a = tiny_molecule().atoms();
  const std::vector<chem::Atom> site_b = {{chem::Element::S, {9, 9, 9}, 0, false, 0}};
  df::serve::ScoreRequest req;
  req.scorer = "sgcnn";
  for (int i = 0; i < 3; ++i) {
    df::serve::PoseInput pose;
    pose.ligand = tiny_molecule();
    pose.pocket = &site_a;
    req.poses.push_back(pose);
  }
  df::serve::PoseInput other;
  other.ligand = tiny_molecule();
  other.pocket = &site_b;
  req.poses.push_back(other);
  df::serve::PoseInput orphan;
  orphan.ligand = tiny_molecule();
  orphan.pocket = nullptr;
  req.poses.push_back(orphan);

  const wire::ScoreRequestPayload payload = wire::pack_request(req, 7);
  EXPECT_EQ(payload.pockets.size(), 2u) << "shared pocket must ship once";
  EXPECT_EQ(payload.poses[0].pocket, payload.poses[1].pocket);
  EXPECT_EQ(payload.poses[0].pocket, payload.poses[2].pocket);
  EXPECT_NE(payload.poses[3].pocket, payload.poses[0].pocket);
  EXPECT_EQ(payload.poses[4].pocket, wire::kNoPocket);

  // unpack borrows: pose pockets must point into the payload's pockets.
  const df::serve::ScoreRequest back = wire::unpack_request(payload);
  ASSERT_EQ(back.poses.size(), 5u);
  EXPECT_EQ(back.poses[0].pocket, &payload.pockets[payload.poses[0].pocket]);
  EXPECT_EQ(back.poses[4].pocket, nullptr);
  EXPECT_EQ(back.scorer, req.scorer);
}

TEST(WirePayload, MalformedPayloadsThrowTyped) {
  // Underflow: a Hello cut short mid-string.
  wire::HelloPayload hello;
  hello.node_id = "some-node-name";
  const std::string bytes = hello.encode();
  EXPECT_THROW(wire::HelloPayload::decode(std::string_view(bytes).substr(0, 6)),
               wire::WireDecodeError);
  // Trailing bytes after a complete payload.
  EXPECT_THROW(wire::HelloPayload::decode(bytes + "junk"), wire::WireDecodeError);
  // Ping payload too small.
  EXPECT_THROW(wire::PingPayload::decode("abc"), wire::WireDecodeError);

  // Element code out of range inside a molecule.
  df::serve::ScoreRequest req;
  req.scorer = "s";
  df::serve::PoseInput pose;
  pose.ligand = tiny_molecule();
  req.poses.push_back(pose);
  std::string encoded = wire::pack_request(req, 1).encode();
  // Find the first atom's element byte: u64 id + u32 deadline + str scorer
  // (4 + 1) + str client (4) + u32 pockets + u32 atom count, then element.
  const size_t element_at = 8 + 4 + (4 + 1) + 4 + 4 + 4;
  encoded[element_at] = static_cast<char>(0x7F);
  EXPECT_THROW(wire::ScoreRequestPayload::decode(encoded), wire::WireDecodeError);

  // Done frame with an error code past the enum.
  wire::ScoreDonePayload done;
  done.request_id = 1;
  std::string done_bytes = done.encode();
  done_bytes[8] = 0x50;  // error byte follows the u64 request id
  EXPECT_THROW(wire::ScoreDonePayload::decode(done_bytes), wire::WireDecodeError);
}
