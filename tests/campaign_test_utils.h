// Shared helpers for the campaign determinism / resume test suites: a tiny
// fast campaign configuration, a deterministic SG-CNN factory, and the
// bitwise report comparison that "resumed == uninterrupted" is defined by.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "models/sgcnn.h"
#include "screen/campaign.h"

namespace df::screen::testutil {

inline CampaignConfig tiny_campaign() {
  CampaignConfig cfg;
  cfg.job.nodes = 1;
  cfg.job.gpus_per_node = 2;
  cfg.job.voxel.grid_dim = 8;
  cfg.poses_per_job = 4;
  cfg.pipeline.docking.num_runs = 3;
  cfg.pipeline.docking.steps_per_run = 25;
  cfg.pipeline.docking.max_poses = 3;
  cfg.pipeline.rescore_top_n = 1;
  return cfg;
}

inline ModelFactory tiny_sg_factory() {
  return [] {
    core::Rng rng(31);
    models::SgcnnConfig cfg;
    cfg.covalent_gather_width = 8;
    cfg.noncovalent_gather_width = 12;
    cfg.covalent_k = 2;
    cfg.noncovalent_k = 2;
    return std::make_unique<models::Sgcnn>(cfg, rng);
  };
}

/// The deterministic subset of a CampaignReport must match bit-for-bit;
/// timing fields and bookkeeping like units_resumed / checkpoints_written
/// legitimately differ between an uninterrupted and a resumed run.
inline void expect_reports_bitwise_equal(const CampaignReport& a, const CampaignReport& b) {
  EXPECT_EQ(a.jobs_run, b.jobs_run);
  EXPECT_EQ(a.jobs_failed, b.jobs_failed);
  EXPECT_EQ(a.compounds_rejected, b.compounds_rejected);
  EXPECT_EQ(a.poses_generated, b.poses_generated);
  EXPECT_EQ(a.units_total, b.units_total);
  EXPECT_EQ(a.units_exhausted, b.units_exhausted);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    const CompoundScreenResult& x = a.results[i];
    const CompoundScreenResult& y = b.results[i];
    EXPECT_EQ(x.compound_id, y.compound_id);
    EXPECT_EQ(x.target_index, y.target_index);
    EXPECT_EQ(x.poses, y.poses);
    // EXPECT_EQ on floats is exact equality — bitwise for finite values.
    EXPECT_EQ(x.fusion_pk, y.fusion_pk) << "compound " << x.compound_id;
    EXPECT_EQ(x.vina_score, y.vina_score);
    EXPECT_EQ(x.mmgbsa_score, y.mmgbsa_score);
    EXPECT_EQ(x.ampl_mmgbsa_score, y.ampl_mmgbsa_score);
    EXPECT_EQ(x.true_pk, y.true_pk);
    EXPECT_EQ(x.percent_inhibition, y.percent_inhibition);
  }
}

}  // namespace df::screen::testutil
