// Fusion-model semantics: Late = mean of heads; Mid keeps heads frozen;
// Coherent backpropagates into both heads (the paper's key innovation).
#include <gtest/gtest.h>

#include "chem/conformer.h"
#include "chem/smiles.h"
#include "data/target.h"
#include "models/fusion.h"

namespace df::models {
namespace {

using core::Rng;

data::Sample make_sample(Rng& rng) {
  chem::Molecule lig = chem::parse_smiles("CC(N)CC(=O)O");
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  std::vector<chem::Atom> pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  chem::VoxelConfig vc;
  vc.grid_dim = 8;
  data::Sample s;
  s.voxel = chem::Voxelizer(vc).voxelize(lig, pocket, {});
  s.graph = chem::GraphFeaturizer().featurize(lig, pocket);
  s.label = 7.0f;
  return s;
}

std::shared_ptr<Cnn3d> make_cnn(Rng& rng) {
  Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  cfg.dropout1 = cfg.dropout2 = 0.0f;
  return std::make_shared<Cnn3d>(cfg, rng);
}

std::shared_ptr<Sgcnn> make_sg(Rng& rng) {
  SgcnnConfig cfg;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 12;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return std::make_shared<Sgcnn>(cfg, rng);
}

FusionConfig deterministic_fusion(FusionKind kind) {
  FusionConfig cfg;
  cfg.kind = kind;
  cfg.dropout1 = cfg.dropout2 = cfg.dropout3 = 0.0f;
  cfg.fusion_nodes = 8;
  return cfg;
}

TEST(LateFusion, IsExactMeanOfHeads) {
  Rng rng(1);
  auto cnn = make_cnn(rng);
  auto sg = make_sg(rng);
  LateFusion late(cnn, sg);
  Rng srng(2);
  data::Sample s = make_sample(srng);
  EXPECT_NEAR(late.predict(s), 0.5f * (cnn->predict(s) + sg->predict(s)), 1e-5f);
  EXPECT_TRUE(late.trainable_parameters().empty());
}

TEST(FusionModel, OutputFinite) {
  Rng rng(3);
  for (FusionKind kind : {FusionKind::Mid, FusionKind::Coherent}) {
    auto cnn = make_cnn(rng);
    auto sg = make_sg(rng);
    FusionModel fusion(deterministic_fusion(kind), cnn, sg, rng);
    Rng srng(4);
    data::Sample s = make_sample(srng);
    EXPECT_TRUE(std::isfinite(fusion.predict(s))) << fusion_name(kind);
  }
}

TEST(FusionModel, MidFreezesHeads) {
  Rng rng(5);
  auto cnn = make_cnn(rng);
  auto sg = make_sg(rng);
  FusionModel fusion(deterministic_fusion(FusionKind::Mid), cnn, sg, rng);
  // Heads' parameters are NOT in the trainable set...
  auto params = fusion.trainable_parameters();
  for (nn::Parameter* hp : cnn->trainable_parameters()) {
    EXPECT_EQ(std::find(params.begin(), params.end(), hp), params.end());
  }
  // ...and backward leaves head gradients untouched.
  Rng srng(6);
  data::Sample s = make_sample(srng);
  cnn->zero_grad();
  sg->zero_grad();
  fusion.forward_train(s);
  fusion.backward(1.0f);
  for (nn::Parameter* hp : cnn->trainable_parameters()) {
    EXPECT_FLOAT_EQ(hp->grad.norm(), 0.0f) << hp->name;
  }
}

TEST(FusionModel, CoherentBackpropagatesIntoBothHeads) {
  Rng rng(7);
  auto cnn = make_cnn(rng);
  auto sg = make_sg(rng);
  FusionModel fusion(deterministic_fusion(FusionKind::Coherent), cnn, sg, rng);
  Rng srng(8);
  data::Sample s = make_sample(srng);
  fusion.zero_grad();
  fusion.forward_train(s);
  fusion.backward(1.0f);
  float cnn_grad = 0, sg_grad = 0;
  for (nn::Parameter* p : cnn->trainable_parameters()) cnn_grad += p->grad.norm();
  for (nn::Parameter* p : sg->trainable_parameters()) sg_grad += p->grad.norm();
  EXPECT_GT(cnn_grad, 0.0f);
  EXPECT_GT(sg_grad, 0.0f);
}

TEST(FusionModel, CoherentTrainableIncludesHeads) {
  Rng rng(9);
  auto cnn = make_cnn(rng);
  auto sg = make_sg(rng);
  FusionModel coherent(deterministic_fusion(FusionKind::Coherent), cnn, sg, rng);
  FusionModel mid(deterministic_fusion(FusionKind::Mid), make_cnn(rng), make_sg(rng), rng);
  EXPECT_GT(coherent.trainable_parameters().size(), mid.trainable_parameters().size());
}

TEST(FusionModel, ModelSpecificLayersWidenInput) {
  Rng rng(10);
  FusionConfig with = deterministic_fusion(FusionKind::Mid);
  with.model_specific_layers = true;
  FusionConfig without = deterministic_fusion(FusionKind::Mid);
  FusionModel m1(with, make_cnn(rng), make_sg(rng), rng);
  FusionModel m2(without, make_cnn(rng), make_sg(rng), rng);
  EXPECT_GT(m1.trainable_parameters().size(), m2.trainable_parameters().size());
}

TEST(FusionModel, GradCheckFusionLayers) {
  Rng rng(11);
  auto cnn = make_cnn(rng);
  auto sg = make_sg(rng);
  FusionModel fusion(deterministic_fusion(FusionKind::Coherent), cnn, sg, rng);
  Rng srng(12);
  data::Sample s = make_sample(srng);
  fusion.zero_grad();
  fusion.forward_train(s);
  fusion.backward(1.0f);

  const float eps = 2e-2f;
  int checked = 0;
  for (nn::Parameter* p : fusion.trainable_parameters()) {
    if (checked >= 20) break;  // spot-check across the stack
    const int64_t i = p->value.numel() / 3;
    const float orig = p->value[i];
    p->value[i] = orig + eps;
    const float lp = fusion.forward_train(s);
    p->value[i] = orig - eps;
    const float lm = fusion.forward_train(s);
    p->value[i] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    const float analytic = p->grad[i];
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic)});
    EXPECT_NEAR(analytic / scale, numeric / scale, 5e-2f) << p->name;
    ++checked;
  }
}

TEST(FusionModel, NamesMatchPaper) {
  EXPECT_STREQ(fusion_name(FusionKind::Late), "Late Fusion");
  EXPECT_STREQ(fusion_name(FusionKind::Mid), "Mid-level Fusion");
  EXPECT_STREQ(fusion_name(FusionKind::Coherent), "Coherent Fusion");
}

}  // namespace
}  // namespace df::models
