#include "core/tensor.h"

#include <gtest/gtest.h>

#include "core/linalg.h"
#include "core/rng.h"

namespace df::core {
namespace {

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, FromVector) {
  Tensor t = Tensor::from({1, 2, 3});
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{3}));
  EXPECT_FLOAT_EQ(t.sum(), 6.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({2, 3});
  EXPECT_FLOAT_EQ(r.at(1, 2), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  EXPECT_FLOAT_EQ((a + b)[1], 7.0f);
  EXPECT_FLOAT_EQ((b - a)[2], 3.0f);
  EXPECT_FLOAT_EQ((a * b)[0], 4.0f);
  EXPECT_FLOAT_EQ((a * 2.0f)[2], 6.0f);
  EXPECT_FLOAT_EQ((a + 1.0f)[0], 2.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2}), b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Tensor, Axpy) {
  Tensor a = Tensor::from({1, 1});
  Tensor b = Tensor::from({2, 3});
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 2.5f);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from({-1, 0, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_NEAR(t.norm(), std::sqrt(14.0f), 1e-5f);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a = Tensor::from({1, 2, 3, 4}).reshaped({2, 2});
  Tensor b = Tensor::from({5, 6, 7, 8}).reshaped({2, 2});
  Tensor c = a.matmul(b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  Tensor a({2, 3}), b({2, 3});
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(Tensor, MatmulTransposedVariantsAgree) {
  Rng rng(7);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  // a^T b via matmul_tn must equal transposed2d + matmul.
  Tensor tn = a.matmul_tn(b);
  Tensor ref = a.transposed2d().matmul(b);
  for (int64_t i = 0; i < tn.numel(); ++i) EXPECT_NEAR(tn[i], ref[i], 1e-4f);

  Tensor c = Tensor::randn({5, 3}, rng);
  Tensor d = Tensor::randn({4, 3}, rng);
  Tensor nt = c.matmul_nt(d);  // (5,3) x (4,3)^T
  Tensor ref2 = c.matmul(d.transposed2d());
  for (int64_t i = 0; i < nt.numel(); ++i) EXPECT_NEAR(nt[i], ref2[i], 1e-4f);
}

TEST(Tensor, TransposeRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::randn({3, 7}, rng);
  Tensor tt = a.transposed2d().transposed2d();
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], tt[i]);
}

TEST(Tensor, MapIsOutOfPlace) {
  Tensor a = Tensor::from({1, -2});
  Tensor b = a.map([](float v) { return v * v; });
  EXPECT_FLOAT_EQ(a[1], -2.0f);
  EXPECT_FLOAT_EQ(b[1], 4.0f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(11);
  Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.1f);
  double var = 0;
  for (int64_t i = 0; i < t.numel(); ++i) var += t[i] * t[i];
  var /= t.numel();
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Linalg, CholeskySolveIdentity) {
  std::vector<double> a = {4, 0, 0, 0, 9, 0, 0, 0, 16};
  std::vector<double> x = core::spd_solve(a, 3, {8, 18, 32});
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
  EXPECT_NEAR(x[2], 2.0, 1e-9);
}

TEST(Linalg, CholeskySolveGeneralSpd) {
  // A = L L^T with L = [[2,0],[1,3]] => A = [[4,2],[2,10]]
  std::vector<double> a = {4, 2, 2, 10};
  // pick x = (1, -1): b = A x = (2, -8)
  std::vector<double> x = core::spd_solve(a, 2, {2, -8});
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], -1.0, 1e-9);
}

TEST(Linalg, NonSpdThrows) {
  std::vector<double> a = {1, 2, 2, 1};  // indefinite
  EXPECT_THROW(core::cholesky(a, 2), std::runtime_error);
}

}  // namespace
}  // namespace df::core
