// Training-loop checks: loss decreases on real featurized data for every
// model family, gradient clipping, and evaluation plumbing. Fixtures come
// from trainer_test_utils.h and are deliberately tiny so the suite stays
// under the `fast` label budget; the engine's parallel/determinism and
// checkpoint/resume properties live in test_trainer_parallel.cpp and
// test_trainer_resume.cpp.
#include <gtest/gtest.h>

#include "trainer_test_utils.h"

namespace df::models {
namespace {

namespace tu = testutil;
using core::Rng;

// Loss-decrease assertions are most robust without dropout noise; the
// dropout-active configs are exercised by the determinism suites.
Cnn3dConfig dropout_free_cnn() {
  Cnn3dConfig cfg = tu::tiny_cnn();
  cfg.dropout1 = cfg.dropout2 = 0.0f;
  return cfg;
}

TEST(Trainer, SgcnnLossDecreases) {
  const auto c = tu::make_corpus(16, 1);
  Rng rng(2);
  Sgcnn model(tu::tiny_sg(), rng);
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  tc.lr = 3e-3f;
  const TrainResult res = train_model(model, *c->train, *c->val, tc);
  ASSERT_EQ(res.epochs.size(), 3u);
  EXPECT_LT(res.epochs.back().train_mse, res.epochs.front().train_mse);
  EXPECT_GE(res.best_epoch, 0);
  EXPECT_LE(res.best_val_mse, res.epochs.front().val_mse + 1e-5f);
}

TEST(Trainer, Cnn3dLossDecreases) {
  const auto c = tu::make_corpus(10, 3);
  Rng rng(4);
  Cnn3d model(dropout_free_cnn(), rng);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  tc.lr = 1e-3f;
  const TrainResult res = train_model(model, *c->train, *c->val, tc);
  EXPECT_LT(res.epochs.back().train_mse, res.epochs.front().train_mse);
}

TEST(Trainer, CoherentFusionLossDecreases) {
  const auto c = tu::make_corpus(10, 5);
  Rng rng(6);
  auto cnn = std::make_shared<Cnn3d>(dropout_free_cnn(), rng);
  auto sg = std::make_shared<Sgcnn>(tu::tiny_sg(), rng);
  FusionConfig fc = tu::tiny_fusion();
  fc.dropout1 = fc.dropout2 = fc.dropout3 = 0.0f;
  FusionModel fusion(fc, cnn, sg, rng);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  tc.lr = 1e-3f;
  const TrainResult res = train_model(fusion, *c->train, *c->val, tc);
  EXPECT_LT(res.epochs.back().train_mse, res.epochs.front().train_mse);
}

TEST(Trainer, EvaluateMatchesDatasetOrder) {
  const auto c = tu::make_corpus(10, 7);
  Rng rng(8);
  Sgcnn model(tu::tiny_sg(), rng);
  const std::vector<float> preds = evaluate(model, *c->val);
  const std::vector<float> labels = labels_of(*c->val);
  EXPECT_EQ(preds.size(), c->val->size());
  EXPECT_EQ(labels.size(), c->val->size());
  for (float p : preds) EXPECT_TRUE(std::isfinite(p));
}

TEST(Trainer, ValidationMseConsistentWithEvaluate) {
  const auto c = tu::make_corpus(24, 9);
  ASSERT_GT(c->val->size(), 0u);
  Rng rng(10);
  Sgcnn model(tu::tiny_sg(), rng);
  const float mse = validation_mse(model, *c->val);
  const std::vector<float> preds = evaluate(model, *c->val);
  const std::vector<float> labels = labels_of(*c->val);
  double acc = 0;
  for (size_t i = 0; i < preds.size(); ++i) acc += (preds[i] - labels[i]) * (preds[i] - labels[i]);
  EXPECT_NEAR(mse, acc / preds.size(), 1e-4);
}

TEST(Trainer, ClipGradNormScalesDown) {
  nn::Parameter a(core::Tensor::from({3.0f, 4.0f}), "a");  // |g| = 5
  a.grad[0] = 3.0f;
  a.grad[1] = 4.0f;
  clip_grad_norm({&a}, 1.0f);
  EXPECT_NEAR(a.grad.norm(), 1.0f, 1e-4f);
  // Below the threshold: untouched.
  nn::Parameter b(core::Tensor::from({0.3f}), "b");
  b.grad[0] = 0.3f;
  clip_grad_norm({&b}, 1.0f);
  EXPECT_FLOAT_EQ(b.grad[0], 0.3f);
}

TEST(Trainer, ParallelThreadsRequireReplicaFactory) {
  const auto c = tu::make_corpus(8, 11);
  Rng rng(12);
  Sgcnn model(tu::tiny_sg(), rng);
  TrainConfig tc;
  tc.epochs = 1;
  tc.threads = 2;  // no replica_factory set
  EXPECT_THROW(train_model(model, *c->train, *c->val, tc), std::invalid_argument);
}

TEST(Trainer, ReportsWallClock) {
  const auto c = tu::make_corpus(8, 11);
  Rng rng(12);
  Sgcnn model(tu::tiny_sg(), rng);
  TrainConfig tc;
  tc.epochs = 1;
  const TrainResult res = train_model(model, *c->train, *c->val, tc);
  EXPECT_GT(res.seconds, 0.0);
}

}  // namespace
}  // namespace df::models
