// Training-loop checks: loss decreases on real featurized data for every
// model family, gradient clipping, and evaluation plumbing.
#include <gtest/gtest.h>

#include "data/splits.h"
#include "models/fusion.h"
#include "models/trainer.h"

namespace df::models {
namespace {

using core::Rng;

struct Corpus {
  std::vector<data::ComplexRecord> recs;
  std::unique_ptr<data::ComplexDataset> train;
  std::unique_ptr<data::ComplexDataset> val;
};

Corpus make_corpus(int n, uint64_t seed) {
  Corpus c;
  data::PdbbindConfig cfg;
  cfg.num_complexes = n;
  cfg.core_size = 4;
  cfg.settle_runs = 1;
  cfg.settle_steps = 8;
  Rng rng(seed);
  c.recs = data::SyntheticPdbbind(cfg).generate(rng);
  data::TrainValSplit split = data::pdbbind_train_val(c.recs, 0.2f, rng);
  data::DatasetConfig dc;
  dc.voxel.grid_dim = 8;
  c.train = std::make_unique<data::ComplexDataset>(&c.recs, split.train, dc);
  c.val = std::make_unique<data::ComplexDataset>(&c.recs, split.val, dc);
  return c;
}

SgcnnConfig tiny_sg() {
  SgcnnConfig cfg;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 16;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return cfg;
}

Cnn3dConfig tiny_cnn() {
  Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  cfg.dropout1 = cfg.dropout2 = 0.0f;
  return cfg;
}

TEST(Trainer, SgcnnLossDecreases) {
  Corpus c = make_corpus(40, 1);
  Rng rng(2);
  Sgcnn model(tiny_sg(), rng);
  TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 8;
  tc.lr = 3e-3f;
  const TrainResult res = train_model(model, *c.train, *c.val, tc);
  ASSERT_EQ(res.epochs.size(), 6u);
  EXPECT_LT(res.epochs.back().train_mse, res.epochs.front().train_mse);
  EXPECT_GE(res.best_epoch, 0);
  EXPECT_LE(res.best_val_mse, res.epochs.front().val_mse + 1e-5f);
}

TEST(Trainer, Cnn3dLossDecreases) {
  Corpus c = make_corpus(24, 3);
  Rng rng(4);
  Cnn3d model(tiny_cnn(), rng);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  tc.lr = 1e-3f;
  const TrainResult res = train_model(model, *c.train, *c.val, tc);
  EXPECT_LT(res.epochs.back().train_mse, res.epochs.front().train_mse);
}

TEST(Trainer, CoherentFusionLossDecreases) {
  Corpus c = make_corpus(24, 5);
  Rng rng(6);
  auto cnn = std::make_shared<Cnn3d>(tiny_cnn(), rng);
  auto sg = std::make_shared<Sgcnn>(tiny_sg(), rng);
  FusionConfig fc;
  fc.kind = FusionKind::Coherent;
  fc.fusion_nodes = 8;
  fc.dropout1 = fc.dropout2 = fc.dropout3 = 0.0f;
  FusionModel fusion(fc, cnn, sg, rng);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  tc.lr = 1e-3f;
  const TrainResult res = train_model(fusion, *c.train, *c.val, tc);
  EXPECT_LT(res.epochs.back().train_mse, res.epochs.front().train_mse);
}

TEST(Trainer, EvaluateMatchesDatasetOrder) {
  Corpus c = make_corpus(16, 7);
  Rng rng(8);
  Sgcnn model(tiny_sg(), rng);
  const std::vector<float> preds = evaluate(model, *c.val);
  const std::vector<float> labels = labels_of(*c.val);
  EXPECT_EQ(preds.size(), c.val->size());
  EXPECT_EQ(labels.size(), c.val->size());
  for (float p : preds) EXPECT_TRUE(std::isfinite(p));
}

TEST(Trainer, ValidationMseConsistentWithEvaluate) {
  Corpus c = make_corpus(40, 9);
  ASSERT_GT(c.val->size(), 0u);
  Rng rng(10);
  Sgcnn model(tiny_sg(), rng);
  const float mse = validation_mse(model, *c.val);
  const std::vector<float> preds = evaluate(model, *c.val);
  const std::vector<float> labels = labels_of(*c.val);
  double acc = 0;
  for (size_t i = 0; i < preds.size(); ++i) acc += (preds[i] - labels[i]) * (preds[i] - labels[i]);
  EXPECT_NEAR(mse, acc / preds.size(), 1e-4);
}

TEST(Trainer, ClipGradNormScalesDown) {
  nn::Parameter a(core::Tensor::from({3.0f, 4.0f}), "a");  // |g| = 5
  a.grad[0] = 3.0f;
  a.grad[1] = 4.0f;
  clip_grad_norm({&a}, 1.0f);
  EXPECT_NEAR(a.grad.norm(), 1.0f, 1e-4f);
  // Below the threshold: untouched.
  nn::Parameter b(core::Tensor::from({0.3f}), "b");
  b.grad[0] = 0.3f;
  clip_grad_norm({&b}, 1.0f);
  EXPECT_FLOAT_EQ(b.grad[0], 0.3f);
}

TEST(Trainer, ReportsWallClock) {
  Corpus c = make_corpus(12, 11);
  Rng rng(12);
  Sgcnn model(tiny_sg(), rng);
  TrainConfig tc;
  tc.epochs = 1;
  const TrainResult res = train_model(model, *c.train, *c.val, tc);
  EXPECT_GT(res.seconds, 0.0);
}

}  // namespace
}  // namespace df::models
