// Post-training int8 quantization pins (ISSUE 8 acceptance criteria):
//   * the blocked u8xs8 GEMM is bitwise identical to its unblocked
//     reference over the same packed operands — every shape class (micro-
//     tile interior, panel edges, k-group tails), every epilogue variant,
//     and every compute-pool width,
//   * dequantized int8 results track the fp32 product within the analytic
//     quantization-error bound (semantics, not just both-paths-same-bug),
//   * calibration is deterministic: the sample subset is a pure function
//     of (seed, dataset size), and the derived scales are bitwise
//     identical at 1 vs 8 compute threads and across reruns,
//   * quantized models stay within the accuracy budget vs their fp32
//     siblings: score RMSE drift <= 0.05 pK, Pearson >= 0.99, and >= 95%
//     top-100 ranking overlap on a 120-pose eval set,
//   * a quantized model round-trips through the compiled artifact with
//     bitwise-identical scores, and registry *_int8 replicas are
//     bitwise-identical to each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chem/conformer.h"
#include "chem/voxelizer.h"
#include "compile/model_compiler.h"
#include "core/gemm_s8.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/threadpool.h"
#include "data/dataset.h"
#include "data/pdbbind.h"
#include "data/target.h"
#include "io/model_artifact.h"
#include "models/cnn3d.h"
#include "models/fusion.h"
#include "models/sgcnn.h"
#include "nn/conv3d.h"
#include "nn/dense.h"
#include "quant/calibrator.h"
#include "quant/quantize.h"
#include "serve/registry.h"
#include "serve/scorer.h"
#include "stats/metrics.h"

namespace df {
namespace {

using core::Rng;

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- fixtures (mirror tests/test_compile.cpp) ----------------------------

chem::VoxelConfig tiny_voxel() {
  chem::VoxelConfig cfg;
  cfg.grid_dim = 8;
  return cfg;
}

models::Cnn3dConfig tiny_cnn_cfg() {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  return cfg;
}

models::SgcnnConfig tiny_sg_cfg() {
  models::SgcnnConfig cfg;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 16;
  return cfg;
}

std::vector<std::pair<std::string, models::RegressorFactory>> family_factories() {
  return {
      {"cnn3d",
       [] {
         Rng rng(41);
         return std::make_unique<models::Cnn3d>(tiny_cnn_cfg(), rng);
       }},
      {"sgcnn",
       [] {
         Rng rng(42);
         return std::make_unique<models::Sgcnn>(tiny_sg_cfg(), rng);
       }},
      {"fusion",
       [] {
         Rng rng(43);
         auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(), rng);
         auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
         models::FusionConfig fcfg;
         fcfg.kind = models::FusionKind::Mid;
         fcfg.model_specific_layers = true;
         fcfg.fusion_nodes = 12;
         return std::make_unique<models::FusionModel>(fcfg, cnn, sg, rng);
       }},
  };
}

/// Featurized synthetic complexes (voxel grid 8 + graphs), deterministic
/// per seed. Calibration and eval sets use distinct seeds so the accuracy
/// pins measure generalization of the calibrated ranges, not memorization.
std::vector<data::Sample> make_samples(int n, uint64_t seed) {
  data::PdbbindConfig cfg;
  cfg.num_complexes = n;
  cfg.core_size = std::min(n, 4);
  cfg.settle_runs = 1;
  cfg.settle_steps = 6;
  Rng rng(seed);
  const std::vector<data::ComplexRecord> recs = data::SyntheticPdbbind(cfg).generate(rng);
  data::DatasetConfig dc;
  dc.voxel = tiny_voxel();
  std::vector<int> idx(recs.size());
  std::iota(idx.begin(), idx.end(), 0);
  data::ComplexDataset ds(&recs, std::move(idx), dc);
  std::vector<data::Sample> out;
  out.reserve(ds.size());
  Rng srng(1);  // unused: eval datasets never augment
  for (size_t i = 0; i < ds.size(); ++i) out.push_back(ds.get(i, srng));
  return out;
}

std::vector<const data::Sample*> ptrs_of(const std::vector<data::Sample>& samples) {
  std::vector<const data::Sample*> out;
  out.reserve(samples.size());
  for (const data::Sample& s : samples) out.push_back(&s);
  return out;
}

/// The tiny 4/8-filter fixtures sit below the int8 cost model's default
/// conv-width threshold (their convs would be deliberately left fp32).
/// Tests that exercise quantized conv execution disable the model.
quant::QuantizeOptions quantize_all() {
  quant::QuantizeOptions opts;
  opts.min_conv_out_channels_for_int8 = 0;
  return opts;
}

std::vector<float> random_buf(int64_t n, Rng& rng, float lo = -1.0f, float hi = 1.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Every calibrated quantization parameter of a model, flattened in
/// canonical walk order; -1 sentinels keep fp32 layers distinguishable.
/// Bitwise vector equality == identical quantized execution state.
std::vector<float> quant_signature(models::Regressor& model) {
  compile::StructureWalk w = compile::walk_structure(model);
  std::vector<float> sig;
  for (nn::Dense* d : w.dense) {
    const nn::QuantizedDense* q = d->quantized_state();
    if (q == nullptr) {
      sig.push_back(-1.0f);
      continue;
    }
    sig.push_back(q->act_scale);
    sig.insert(sig.end(), q->scales, q->scales + d->out_features());
  }
  for (nn::Conv3d* c : w.conv) {
    const nn::QuantizedConv* q = c->quantized_state();
    if (q == nullptr) {
      sig.push_back(-1.0f);
      continue;
    }
    sig.push_back(q->act_scale);
    sig.insert(sig.end(), q->scales, q->scales + c->out_channels());
  }
  return sig;
}

// ---- int8 GEMM: blocked kernel vs unblocked reference, bitwise -----------

struct S8Case {
  int64_t m, n, k;
};

struct S8EpilogueSpec {
  core::EpilogueAct act = core::EpilogueAct::kNone;
  float leaky_slope = 0.01f;
  bool scale_col = false;
  bool scale_row = false;
  bool bias_col = false;
  bool bias_row = false;
};

/// Quantize random fp32 operands into the packed images once, then compare
/// gemm_u8s8f32 against gemm_u8s8f32_naive bitwise under the epilogue
/// described by `spec`.
void check_s8_case(int64_t m, int64_t n, int64_t k, const S8EpilogueSpec& spec, Rng& rng,
                   bool per_col_b_scales) {
  const std::vector<float> A = random_buf(m * k, rng, -2.0f, 2.0f);
  const std::vector<float> B = random_buf(k * n, rng);
  const float act_scale = 2.0f / 127.0f;

  std::vector<float> b_inv(static_cast<size_t>(n));
  std::vector<float> dequant(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    float wmax = 0.0f;
    for (int64_t p = 0; p < k; ++p) wmax = std::max(wmax, std::fabs(B[p * n + j]));
    const float ws = wmax > 0.0f ? wmax / 127.0f : 1.0f;
    b_inv[static_cast<size_t>(j)] = 1.0f / ws;
    dequant[static_cast<size_t>(j)] = act_scale * ws;
  }

  std::vector<int8_t> panels(static_cast<size_t>(core::packed_b_bytes_s8(k, n)));
  std::vector<int32_t> comp(static_cast<size_t>(n));
  core::pack_quantize_b_s8(k, n, B.data(), n, per_col_b_scales ? b_inv.data() : nullptr,
                           b_inv[0], panels.data(), comp.data());
  std::vector<uint8_t> aq(static_cast<size_t>(core::quantized_a_bytes_s8(m, k)));
  core::quantize_a_u8(m, k, A.data(), k, nullptr, 1.0f / act_scale, aq.data());

  core::QuantEpilogue ep;
  ep.act = spec.act;
  ep.leaky_slope = spec.leaky_slope;
  ep.comp_col = comp.data();
  std::vector<float> bias;
  if (spec.bias_col || spec.bias_row) {
    bias = random_buf(std::max(m, n), rng);
    if (spec.bias_col) ep.bias_col = bias.data();
    if (spec.bias_row) ep.bias_row = bias.data();
  }
  std::vector<float> row_scales;
  if (spec.scale_row) {
    row_scales = random_buf(m, rng, 0.001f, 0.01f);
    ep.scale_row = row_scales.data();
  }
  if (spec.scale_col) ep.scale_col = dequant.data();

  const int64_t k4 = (k + 3) & ~int64_t{3};
  std::vector<float> got(static_cast<size_t>(m * n), -7.0f);
  std::vector<float> want(static_cast<size_t>(m * n), 42.0f);
  core::gemm_u8s8f32(m, n, k, aq.data(), k4, panels.data(), got.data(), n, ep);
  core::gemm_u8s8f32_naive(m, n, k, aq.data(), k4, panels.data(), want.data(), n, ep);
  for (int64_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(got[static_cast<size_t>(i)], want[static_cast<size_t>(i)])
        << "m=" << m << " n=" << n << " k=" << k << " elem " << i;
  }
}

TEST(GemmS8, KernelMatchesNaiveAcrossShapesAndEpilogues) {
  // Interior tiles, panel edges (n % 16), micro-tile edges (m % 6), k-group
  // tails (k % 4), and degenerate vectors.
  const std::vector<S8Case> cases = {{1, 1, 1},   {3, 5, 4},    {6, 16, 8},   {7, 17, 13},
                                     {13, 31, 37}, {16, 64, 64}, {33, 70, 100}, {2, 15, 3},
                                     {64, 48, 259}};
  Rng rng(2024);
  for (const S8Case& c : cases) {
    {
      SCOPED_TRACE("no epilogue");  // raw compensated accumulators, scale 1
      check_s8_case(c.m, c.n, c.k, {}, rng, /*per_col_b_scales=*/false);
    }
    {
      SCOPED_TRACE("dense form: scale_col + bias_col + SELU");
      S8EpilogueSpec spec;
      spec.act = core::EpilogueAct::kSELU;
      spec.scale_col = spec.bias_col = true;
      check_s8_case(c.m, c.n, c.k, spec, rng, /*per_col_b_scales=*/true);
    }
    {
      SCOPED_TRACE("conv form: scale_row + bias_row + ReLU");
      S8EpilogueSpec spec;
      spec.act = core::EpilogueAct::kReLU;
      spec.scale_row = spec.bias_row = true;
      check_s8_case(c.m, c.n, c.k, spec, rng, /*per_col_b_scales=*/false);
    }
    {
      SCOPED_TRACE("leaky ReLU");
      S8EpilogueSpec spec;
      spec.act = core::EpilogueAct::kLeakyReLU;
      spec.leaky_slope = 0.1f;
      spec.scale_col = true;
      check_s8_case(c.m, c.n, c.k, spec, rng, /*per_col_b_scales=*/true);
    }
  }
}

TEST(GemmS8, BitwiseIdenticalOnEveryPoolSize) {
  // Big enough to cross the kernel's parallel threshold (m*n*k >= 2^22).
  const int64_t m = 64, n = 128, k = 520;
  std::vector<float> serial;
  for (size_t threads : {1u, 3u, 8u}) {
    core::ThreadPool pool(threads);
    core::ComputePoolGuard guard(&pool);
    Rng rng(99);  // same operands every pool width
    const std::vector<float> A = random_buf(m * k, rng, -2.0f, 2.0f);
    const std::vector<float> B = random_buf(k * n, rng);
    std::vector<int8_t> panels(static_cast<size_t>(core::packed_b_bytes_s8(k, n)));
    std::vector<int32_t> comp(static_cast<size_t>(n));
    core::pack_quantize_b_s8(k, n, B.data(), n, nullptr, 127.0f, panels.data(), comp.data());
    std::vector<uint8_t> aq(static_cast<size_t>(core::quantized_a_bytes_s8(m, k)));
    core::quantize_a_u8(m, k, A.data(), k, nullptr, 127.0f / 2.0f, aq.data());
    core::QuantEpilogue ep;
    ep.comp_col = comp.data();
    std::vector<float> C(static_cast<size_t>(m * n));
    core::gemm_u8s8f32(m, n, k, aq.data(), (k + 3) & ~int64_t{3}, panels.data(), C.data(), n,
                       ep);
    if (serial.empty()) {
      serial = C;
    } else {
      for (size_t i = 0; i < C.size(); ++i) ASSERT_EQ(C[i], serial[i]) << "elem " << i;
    }
  }
}

TEST(GemmS8, DequantizedResultTracksFp32Product) {
  const int64_t m = 8, n = 24, k = 40;
  Rng rng(7);
  const std::vector<float> A = random_buf(m * k, rng, -2.0f, 2.0f);
  const std::vector<float> B = random_buf(k * n, rng);
  const float act_scale = 2.0f / 127.0f;

  std::vector<float> b_inv(static_cast<size_t>(n)), dequant(static_cast<size_t>(n));
  float max_ws = 0.0f;
  for (int64_t j = 0; j < n; ++j) {
    float wmax = 0.0f;
    for (int64_t p = 0; p < k; ++p) wmax = std::max(wmax, std::fabs(B[p * n + j]));
    const float ws = wmax > 0.0f ? wmax / 127.0f : 1.0f;
    b_inv[static_cast<size_t>(j)] = 1.0f / ws;
    dequant[static_cast<size_t>(j)] = act_scale * ws;
    max_ws = std::max(max_ws, ws);
  }
  std::vector<int8_t> panels(static_cast<size_t>(core::packed_b_bytes_s8(k, n)));
  std::vector<int32_t> comp(static_cast<size_t>(n));
  core::pack_quantize_b_s8(k, n, B.data(), n, b_inv.data(), 1.0f, panels.data(), comp.data());
  std::vector<uint8_t> aq(static_cast<size_t>(core::quantized_a_bytes_s8(m, k)));
  core::quantize_a_u8(m, k, A.data(), k, nullptr, 1.0f / act_scale, aq.data());

  core::QuantEpilogue ep;
  ep.scale_col = dequant.data();
  ep.comp_col = comp.data();
  std::vector<float> got(static_cast<size_t>(m * n));
  core::gemm_u8s8f32(m, n, k, aq.data(), (k + 3) & ~int64_t{3}, panels.data(), got.data(), n,
                     ep);

  // Worst-case rounding error per element: each of the k products is off by
  // at most |a|*s_b/2 + |b|*s_a/2 + s_a*s_b/4.
  const float bound =
      static_cast<float>(k) *
      (2.0f * max_ws / 2.0f + 1.0f * act_scale / 2.0f + act_scale * max_ws / 4.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float ref = 0.0f;
      for (int64_t p = 0; p < k; ++p) ref += A[i * k + p] * B[p * n + j];
      ASSERT_LT(std::fabs(got[static_cast<size_t>(i * n + j)] - ref), bound)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(GemmS8, RejectsOversizedK) {
  core::QuantEpilogue ep;
  EXPECT_THROW(core::gemm_u8s8f32(1, 1, core::kGemmS8MaxK + 1, nullptr,
                                  core::kGemmS8MaxK + 4, nullptr, nullptr, 1, ep),
               std::invalid_argument);
}

// ---- calibration determinism ---------------------------------------------

TEST(Calibration, SubsetSelectionIsDeterministic) {
  const std::vector<int64_t> a = quant::select_calibration_indices(7103, 100, 16);
  const std::vector<int64_t> b = quant::select_calibration_indices(7103, 100, 16);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], 0);
    EXPECT_LT(a[i], 100);
    if (i > 0) {
      EXPECT_LT(a[i - 1], a[i]);  // ascending, unique
    }
  }
  // A different seed draws a different subset.
  EXPECT_NE(a, quant::select_calibration_indices(7104, 100, 16));
  // Requesting at least the dataset keeps everything.
  const std::vector<int64_t> all = quant::select_calibration_indices(7103, 5, 16);
  ASSERT_EQ(all.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(Calibration, PercentileClipDiscardsOutliers) {
  quant::CalibConfig cfg;
  cfg.percentile = 99.9f;
  quant::RangeObserver obs(cfg);
  std::vector<float> x(1000);
  Rng rng(3);
  for (float& v : x) v = rng.uniform(-1.0f, 1.0f);
  x.push_back(100.0f);  // a single far outlier
  obs.observe(x.data(), static_cast<int64_t>(x.size()));
  EXPECT_EQ(obs.max_abs(), 100.0f);
  obs.begin_histogram();
  obs.observe(x.data(), static_cast<int64_t>(x.size()));
  EXPECT_GE(obs.clipped_max(), 0.9f);  // still covers the bulk
  EXPECT_LT(obs.clipped_max(), 2.0f);  // but not the outlier
  // percentile >= 100 disables clipping.
  quant::CalibConfig wide;
  wide.percentile = 100.0f;
  quant::RangeObserver full(wide);
  full.observe(x.data(), static_cast<int64_t>(x.size()));
  full.begin_histogram();
  full.observe(x.data(), static_cast<int64_t>(x.size()));
  EXPECT_EQ(full.clipped_max(), 100.0f);
}

TEST(Calibration, ScalesBitwiseIdenticalAtAnyThreadCountAndRerunStable) {
  const std::vector<data::Sample> calib = make_samples(8, 909);
  const std::vector<const data::Sample*> cptrs = ptrs_of(calib);
  const auto quantize_fresh = [&] {
    Rng rng(43);
    auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(), rng);
    auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
    models::FusionConfig fcfg;
    fcfg.kind = models::FusionKind::Mid;
    fcfg.model_specific_layers = true;
    fcfg.fusion_nodes = 12;
    auto model = std::make_unique<models::FusionModel>(fcfg, cnn, sg, rng);
    compile::ModelCompiler().compile(*model);
    const quant::QuantizeReport rep = quant::quantize_model(*model, cptrs, quantize_all());
    EXPECT_GT(rep.quantized_dense, 0);
    EXPECT_GT(rep.quantized_conv, 0);
    EXPECT_GT(rep.kept_fp32, 0);  // the regression heads
    EXPECT_EQ(rep.calibration_samples, static_cast<int64_t>(calib.size()));
    return quant_signature(*model);
  };

  const std::vector<float> serial = quantize_fresh();
  const std::vector<float> serial_again = quantize_fresh();
  EXPECT_EQ(serial, serial_again) << "rerun with identical inputs changed the scales";

  for (size_t threads : {2u, 8u}) {
    core::ThreadPool pool(threads);
    core::ComputePoolGuard guard(&pool);
    EXPECT_EQ(quantize_fresh(), serial) << "scales drifted at pool width " << threads;
  }
}

TEST(Quantize, HeadsStayFp32) {
  const std::vector<data::Sample> calib = make_samples(6, 909);
  for (auto& [name, factory] : family_factories()) {
    SCOPED_TRACE(name);
    auto model = factory();
    compile::ModelCompiler().compile(*model);
    quant::quantize_model(*model, ptrs_of(calib), quantize_all());
    compile::StructureWalk w = compile::walk_structure(*model);
    for (nn::Dense* d : w.dense) {
      if (d->out_features() == 1) {
        EXPECT_EQ(d->quantized_state(), nullptr) << "a regression head was quantized";
      }
    }
  }
}

// ---- accuracy drift budget (fp32 sibling vs int8) ------------------------

int topk_overlap(const std::vector<float>& a, const std::vector<float>& b, int k) {
  const auto top = [&](const std::vector<float>& v) {
    std::vector<int> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](int x, int y) { return v[static_cast<size_t>(x)] > v[static_cast<size_t>(y)]; });
    return std::set<int>(idx.begin(), idx.begin() + k);
  };
  const std::set<int> sa = top(a), sb = top(b);
  int overlap = 0;
  for (int i : sa) overlap += static_cast<int>(sb.count(i));
  return overlap;
}

TEST(Quantize, AccuracyDriftWithinBudget) {
  const std::vector<data::Sample> calib = make_samples(10, 909);
  const std::vector<data::Sample> eval = make_samples(120, 5150);
  const std::vector<const data::Sample*> eptrs = ptrs_of(eval);
  for (auto& [name, factory] : family_factories()) {
    SCOPED_TRACE(name);
    auto fp32 = factory();
    compile::ModelCompiler().compile(*fp32);
    const std::vector<float> want = fp32->predict_batch(eptrs);

    auto int8 = factory();
    compile::ModelCompiler().compile(*int8);
    quant::quantize_model(*int8, ptrs_of(calib), quantize_all());
    const std::vector<float> got = int8->predict_batch(eptrs);

    ASSERT_EQ(got.size(), want.size());
    EXPECT_LE(stats::rmse(got, want), 0.05f) << "score RMSE drift over budget";

    // Correlation and ranking overlap only measure anything when the fp32
    // scores are actually spread out. The untrained tiny cnn3d collapses
    // to a ~1e-3 pK spread — down there Pearson compares rounding noise
    // with rounding noise — so sub-resolvable families pin a tight
    // absolute drift bound instead.
    const float mean = std::accumulate(want.begin(), want.end(), 0.0f) /
                       static_cast<float>(want.size());
    float var = 0.0f;
    for (float v : want) var += (v - mean) * (v - mean);
    const float stddev = std::sqrt(var / static_cast<float>(want.size()));
    if (stddev >= 0.05f) {
      EXPECT_GE(stats::pearson(got, want), 0.99f) << "score correlation drift over budget";
      EXPECT_GE(topk_overlap(got, want, 100), 95) << "top-100 ranking overlap under 95%";
    } else {
      float max_abs = 0.0f;
      for (size_t i = 0; i < want.size(); ++i) {
        max_abs = std::max(max_abs, std::fabs(got[i] - want[i]));
      }
      EXPECT_LE(max_abs, 0.01f) << "absolute drift over budget (degenerate fp32 spread "
                                << stddev << ")";
    }
  }
}

// ---- artifact round-trip: bitwise ----------------------------------------

TEST(Quantize, ArtifactRoundTripReproducesScoresBitwise) {
  const std::vector<data::Sample> calib = make_samples(6, 909);
  const std::vector<data::Sample> eval = make_samples(8, 5151);
  const std::vector<const data::Sample*> eptrs = ptrs_of(eval);
  for (auto& [name, factory] : family_factories()) {
    SCOPED_TRACE(name);
    const std::string artifact = tmp_path("dfq_" + name + ".dfca");
    auto model = factory();
    compile::ModelCompiler().compile(*model);
    quant::quantize_model(*model, ptrs_of(calib), quantize_all());
    const std::vector<float> want = model->predict_batch(eptrs);
    const std::vector<float> sig = quant_signature(*model);
    compile::save_compiled(*model, artifact);

    // The artifact carries the quantized sections (version 2 layout).
    {
      std::shared_ptr<io::ArtifactReader> r = io::ArtifactReader::open(artifact);
      EXPECT_TRUE(r->has("quant/dense_mask"));
      EXPECT_TRUE(r->has("quant/conv_mask"));
    }

    compile::CompiledModel cm = compile::load_compiled(artifact);
    EXPECT_EQ(quant_signature(*cm.model), sig) << "restored quant state differs";
    const std::vector<float> got = cm.model->predict_batch(eptrs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "sample " << i;  // bitwise
    }
    std::filesystem::remove(artifact);
  }
}

// ---- compile-time cost model: narrow convs stay fp32 ---------------------

TEST(Quantize, CostModelSkipsNarrowConvs) {
  const std::vector<data::Sample> calib = make_samples(6, 909);
  const std::vector<data::Sample> eval = make_samples(8, 5153);
  const std::vector<const data::Sample*> cptrs = ptrs_of(calib);
  const std::vector<const data::Sample*> eptrs = ptrs_of(eval);

  // Default threshold: every tiny conv (4/8 output channels) is skipped,
  // recorded in the report, and left without quantized state; dense
  // quantization is unaffected.
  {
    Rng rng(41);
    auto model = std::make_unique<models::Cnn3d>(tiny_cnn_cfg(), rng);
    compile::ModelCompiler().compile(*model);
    const quant::QuantizeReport rep = quant::quantize_model(*model, cptrs);
    compile::StructureWalk w = compile::walk_structure(*model);
    EXPECT_EQ(rep.quantized_conv, 0);
    EXPECT_EQ(rep.skipped_conv, static_cast<int>(w.conv.size()));
    ASSERT_EQ(rep.skipped_conv_layers.size(), w.conv.size());
    for (size_t i = 0; i < w.conv.size(); ++i) {
      EXPECT_EQ(rep.skipped_conv_layers[i], static_cast<int>(i));
      EXPECT_EQ(w.conv[i]->quantized_state(), nullptr);
    }
    EXPECT_GT(rep.quantized_dense, 0);

    // A skip must behave exactly like quantize_conv=false: the cost model
    // changes what runs int8, never what the surviving layers compute.
    Rng rng2(41);
    auto noconv = std::make_unique<models::Cnn3d>(tiny_cnn_cfg(), rng2);
    compile::ModelCompiler().compile(*noconv);
    quant::QuantizeOptions no_conv_opts;
    no_conv_opts.quantize_conv = false;
    quant::quantize_model(*noconv, cptrs, no_conv_opts);
    EXPECT_EQ(model->predict_batch(eptrs), noconv->predict_batch(eptrs));
  }

  // A threshold between the two widths splits the model: 4-channel convs
  // skipped, 8-channel convs quantized, indices identify which.
  {
    Rng rng(41);
    auto model = std::make_unique<models::Cnn3d>(tiny_cnn_cfg(), rng);
    compile::ModelCompiler().compile(*model);
    quant::QuantizeOptions opts;
    opts.min_conv_out_channels_for_int8 = 8;
    const quant::QuantizeReport rep = quant::quantize_model(*model, cptrs, opts);
    compile::StructureWalk w = compile::walk_structure(*model);
    EXPECT_GT(rep.quantized_conv, 0);
    EXPECT_GT(rep.skipped_conv, 0);
    EXPECT_EQ(rep.quantized_conv + rep.skipped_conv, static_cast<int>(w.conv.size()));
    std::set<int> skipped(rep.skipped_conv_layers.begin(), rep.skipped_conv_layers.end());
    for (size_t i = 0; i < w.conv.size(); ++i) {
      if (w.conv[i]->out_channels() < 8) {
        EXPECT_TRUE(skipped.count(static_cast<int>(i))) << "conv " << i;
        EXPECT_EQ(w.conv[i]->quantized_state(), nullptr) << "conv " << i;
      } else {
        EXPECT_FALSE(skipped.count(static_cast<int>(i))) << "conv " << i;
        EXPECT_NE(w.conv[i]->quantized_state(), nullptr) << "conv " << i;
      }
    }
  }

  // Threshold 0 disables the model entirely.
  {
    Rng rng(41);
    auto model = std::make_unique<models::Cnn3d>(tiny_cnn_cfg(), rng);
    compile::ModelCompiler().compile(*model);
    const quant::QuantizeReport rep = quant::quantize_model(*model, cptrs, quantize_all());
    compile::StructureWalk w = compile::walk_structure(*model);
    EXPECT_EQ(rep.quantized_conv, static_cast<int>(w.conv.size()));
    EXPECT_EQ(rep.skipped_conv, 0);
    EXPECT_TRUE(rep.skipped_conv_layers.empty());
  }
}

// ---- registry backends ---------------------------------------------------

TEST(Quantize, RegistryInt8ReplicasAreBitwiseIdentical) {
  serve::ModelRegistry reg = serve::default_registry(tiny_voxel());
  for (const char* name : {"cnn3d_int8", "sgcnn_int8", "fusion_int8"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }

  const std::vector<data::Sample> eval = make_samples(6, 5152);
  const std::vector<const data::Sample*> eptrs = ptrs_of(eval);
  // Replica identity via the model path (the scorer wraps the same model):
  // two independently minted replicas must score bitwise identically.
  std::unique_ptr<serve::Scorer> r1 = reg.make("fusion_int8");
  std::unique_ptr<serve::Scorer> r2 = reg.make("fusion_int8");
  Rng rng(17);
  std::vector<serve::PoseInput> poses;
  const std::vector<chem::Atom> pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  for (int i = 0; i < 4; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = &pocket;
    poses.push_back(std::move(p));
  }
  std::vector<const serve::PoseInput*> pptrs;
  for (const serve::PoseInput& p : poses) pptrs.push_back(&p);
  const std::vector<float> s1 = r1->score(pptrs);
  const std::vector<float> s2 = r2->score(pptrs);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i], s2[i]) << "pose " << i;
}

}  // namespace
}  // namespace df
