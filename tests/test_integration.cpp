// Cross-module integration: the fusion-beats-individual-models property on
// synthetic PDBbind (the paper's central claim, Table 6, in miniature), and
// an end-to-end train -> screen -> correlate loop.
#include <gtest/gtest.h>

#include "data/splits.h"
#include "models/fusion.h"
#include "models/trainer.h"
#include "stats/metrics.h"

namespace df {
namespace {

using core::Rng;

struct Bench {
  std::vector<data::ComplexRecord> recs;
  std::unique_ptr<data::ComplexDataset> train, val, core;
};

Bench make_bench(int n, uint64_t seed) {
  Bench b;
  data::PdbbindConfig cfg;
  cfg.num_complexes = n;
  cfg.core_size = std::max(6, n / 10);
  cfg.settle_runs = 1;
  cfg.settle_steps = 8;
  Rng rng(seed);
  b.recs = data::SyntheticPdbbind(cfg).generate(rng);
  const data::TrainValSplit split = data::pdbbind_train_val(b.recs, 0.15f, rng);
  data::DatasetConfig dc;
  dc.voxel.grid_dim = 8;
  b.train = std::make_unique<data::ComplexDataset>(&b.recs, split.train, dc);
  b.val = std::make_unique<data::ComplexDataset>(&b.recs, split.val, dc);
  b.core = std::make_unique<data::ComplexDataset>(
      &b.recs, data::SyntheticPdbbind::core_indices(b.recs), dc);
  return b;
}

models::SgcnnConfig tiny_sg() {
  models::SgcnnConfig cfg;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 16;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return cfg;
}

models::Cnn3dConfig tiny_cnn() {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  cfg.dropout1 = cfg.dropout2 = 0.0f;
  return cfg;
}

TEST(Integration, TrainedSgcnnBeatsUntrainedOnCore) {
  Bench b = make_bench(60, 21);
  Rng rng(22);
  models::Sgcnn trained(tiny_sg(), rng);
  models::Sgcnn untrained(tiny_sg(), rng);
  models::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.lr = 3e-3f;
  models::train_model(trained, *b.train, *b.val, tc);

  const std::vector<float> labels = models::labels_of(*b.core);
  const std::vector<float> pt = models::evaluate(trained, *b.core);
  const std::vector<float> pu = models::evaluate(untrained, *b.core);
  EXPECT_LT(stats::rmse(pt, labels), stats::rmse(pu, labels));
}

TEST(Integration, LateFusionTracksHeadMean) {
  Bench b = make_bench(30, 23);
  Rng rng(24);
  auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn(), rng);
  auto sg = std::make_shared<models::Sgcnn>(tiny_sg(), rng);
  models::LateFusion late(cnn, sg);
  const std::vector<float> lp = models::evaluate(late, *b.core);
  const std::vector<float> cp = models::evaluate(*cnn, *b.core);
  const std::vector<float> sp = models::evaluate(*sg, *b.core);
  for (size_t i = 0; i < lp.size(); ++i) {
    EXPECT_NEAR(lp[i], 0.5f * (cp[i] + sp[i]), 1e-4f);
  }
}

TEST(Integration, CoherentFusionImprovesOverFrozenHeadsOnVal) {
  // Train heads, then compare Mid (frozen) vs Coherent (fine-tuned) fusion
  // trained identically: coherent must reach a validation MSE at least as
  // good, demonstrating the value of coherent backpropagation.
  Bench b = make_bench(60, 25);
  Rng rng(26);
  auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn(), rng);
  auto sg = std::make_shared<models::Sgcnn>(tiny_sg(), rng);
  models::TrainConfig head_tc;
  head_tc.epochs = 4;
  head_tc.batch_size = 8;
  head_tc.lr = 2e-3f;
  models::train_model(*sg, *b.train, *b.val, head_tc);
  head_tc.lr = 1e-3f;
  models::train_model(*cnn, *b.train, *b.val, head_tc);

  models::FusionConfig fc;
  fc.fusion_nodes = 16;
  fc.dropout1 = fc.dropout2 = fc.dropout3 = 0.0f;
  fc.kind = models::FusionKind::Mid;
  models::FusionModel mid(fc, cnn, sg, rng);
  fc.kind = models::FusionKind::Coherent;
  // Coherent gets its own copies of the SAME trained heads would be ideal;
  // sharing is acceptable here because Mid never mutates them and we train
  // Mid first.
  models::TrainConfig fuse_tc;
  fuse_tc.epochs = 3;
  fuse_tc.batch_size = 8;
  fuse_tc.lr = 1e-3f;
  const models::TrainResult mid_res = models::train_model(mid, *b.train, *b.val, fuse_tc);
  models::FusionModel coherent(fc, cnn, sg, rng);
  const models::TrainResult coh_res = models::train_model(coherent, *b.train, *b.val, fuse_tc);
  EXPECT_LT(coh_res.best_val_mse, mid_res.best_val_mse * 1.5f);
  EXPECT_TRUE(std::isfinite(coh_res.best_val_mse));
}

TEST(Integration, PredictionsCorrelateWithOracleAfterTraining) {
  Bench b = make_bench(80, 27);
  Rng rng(28);
  models::Sgcnn model(tiny_sg(), rng);
  models::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 8;
  tc.lr = 3e-3f;
  models::train_model(model, *b.train, *b.val, tc);
  const std::vector<float> preds = models::evaluate(model, *b.core);
  const std::vector<float> labels = models::labels_of(*b.core);
  EXPECT_GT(stats::pearson(preds, labels), 0.2f);
}

}  // namespace
}  // namespace df
