#include <gtest/gtest.h>

#include "chem/conformer.h"
#include "chem/ligand_prep.h"
#include "chem/smiles.h"

namespace df::chem {
namespace {

using core::Rng;

TEST(Conformer, BondLengthsNearIdeal) {
  Rng rng(1);
  Molecule m = parse_smiles("CCCCC");
  embed_conformer(m, rng);
  for (const Bond& b : m.bonds()) {
    const float d = m.atoms()[static_cast<size_t>(b.a)].pos.dist(
        m.atoms()[static_cast<size_t>(b.b)].pos);
    EXPECT_GT(d, 1.0f);
    EXPECT_LT(d, 2.2f);
  }
}

TEST(Conformer, NoSevereClashes) {
  Rng rng(2);
  MoleculeGenConfig cfg;
  for (int trial = 0; trial < 5; ++trial) {
    Molecule m = generate_molecule(cfg, rng);
    embed_conformer(m, rng);
    for (size_t i = 0; i < m.num_atoms(); ++i) {
      for (size_t j = i + 1; j < m.num_atoms(); ++j) {
        EXPECT_GT(m.atoms()[i].pos.dist(m.atoms()[j].pos), 0.7f)
            << "clash between atoms " << i << " and " << j;
      }
    }
  }
}

TEST(Conformer, RelaxationLowersEnergy) {
  Rng rng(3);
  Molecule m = parse_smiles("CC(C)CC1CCCCC1");
  // Random initial coordinates -> relax must reduce MM energy.
  for (Atom& a : m.atoms()) {
    a.pos = {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
  }
  const float before = mm_energy(m);
  relax_conformer(m);
  const float after = mm_energy(m);
  EXPECT_LT(after, before);
}

TEST(Conformer, DisconnectedFragmentsSeparated) {
  Rng rng(4);
  Molecule m = parse_smiles("CC.Cl");
  embed_conformer(m, rng);
  // The counter-ion is placed away from the main fragment.
  EXPECT_GT(m.atoms()[2].pos.dist(m.atoms()[0].pos), 2.5f);
}

TEST(LigandPrep, StripsSalts) {
  Rng rng(5);
  Molecule m = parse_smiles("CCCCN.Cl");
  auto prep = prepare_ligand(m, rng);
  ASSERT_TRUE(prep.has_value());
  EXPECT_EQ(prep->mol.num_atoms(), 5u);  // Cl- dropped
  EXPECT_EQ(prep->mol.connected_components().size(), 1u);
}

TEST(LigandPrep, RejectsMetals) {
  Rng rng(6);
  Molecule m;
  m.add_atom(Element::C);
  m.add_atom(Element::Metal);
  EXPECT_FALSE(prepare_ligand(m, rng).has_value());
}

TEST(LigandPrep, RejectsEmpty) {
  Rng rng(7);
  EXPECT_FALSE(prepare_ligand(Molecule{}, rng).has_value());
}

TEST(LigandPrep, Ph7ProtonatesAmine) {
  Molecule m = parse_smiles("CCN");  // primary amine: NH2 -> NH3+
  set_ph7_protonation(m);
  EXPECT_EQ(m.atoms()[2].formal_charge, 1);
  EXPECT_EQ(m.atoms()[2].implicit_h, 3);
}

TEST(LigandPrep, Ph7DeprotonatesCarboxylicAcid) {
  Molecule m = parse_smiles("CC(=O)O");  // acetic acid -> acetate
  set_ph7_protonation(m);
  int negative_o = 0;
  for (const Atom& a : m.atoms()) {
    if (a.element == Element::O && a.formal_charge == -1) ++negative_o;
  }
  EXPECT_EQ(negative_o, 1);
}

TEST(LigandPrep, AromaticNitrogenNotProtonated) {
  Molecule m = parse_smiles("c1ccncc1");  // pyridine-like
  set_ph7_protonation(m);
  for (const Atom& a : m.atoms()) EXPECT_EQ(a.formal_charge, 0);
}

TEST(LigandPrep, DescriptorBlockPopulated) {
  Rng rng(8);
  Molecule m = parse_smiles("CC(=O)Oc1ccccc1C(=O)O");  // aspirin-like
  auto prep = prepare_ligand(m, rng);
  ASSERT_TRUE(prep.has_value());
  const LigandDescriptors& d = prep->descriptors;
  EXPECT_GT(d.molecular_weight, 100.0f);
  EXPECT_GT(d.tpsa, 0.0f);
  EXPECT_GE(d.rings, 1);
  EXPECT_GT(d.hbond_acceptors, 0);
}

TEST(LigandPrep, MaxWeightGate) {
  Rng rng(9);
  MoleculeGenConfig cfg;
  cfg.min_heavy_atoms = 100;
  cfg.max_heavy_atoms = 130;
  Molecule heavy = generate_molecule(cfg, rng);
  LigandPrepConfig pc;
  pc.max_molecular_weight = 500.0f;
  EXPECT_FALSE(prepare_ligand(heavy, rng, pc).has_value());
}

}  // namespace
}  // namespace df::chem
