#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "data/splits.h"
#include "hpo/gp.h"
#include "hpo/pb2.h"
#include "hpo/search_space.h"
#include "models/sgcnn.h"
#include "models/trainer.h"

namespace df::hpo {
namespace {

using core::Rng;

TEST(SearchSpace, SampleRespectsBounds) {
  Rng rng(1);
  SearchSpace s;
  s.add_continuous("a", -1.0, 2.0);
  s.add_log_continuous("lr", 1e-6, 1e-2);
  s.add_categorical("bs", {4, 8, 16});
  s.add_boolean("flag");
  for (int i = 0; i < 50; ++i) {
    const HpoConfig c = s.sample(rng);
    EXPECT_GE(c.at("a"), -1.0);
    EXPECT_LE(c.at("a"), 2.0);
    EXPECT_GE(c.at("lr"), 1e-6);
    EXPECT_LE(c.at("lr"), 1e-2);
    const double bs = c.at("bs");
    EXPECT_TRUE(bs == 4 || bs == 8 || bs == 16);
    EXPECT_TRUE(c.at("flag") == 0.0 || c.at("flag") == 1.0);
  }
}

TEST(SearchSpace, LogSamplingCoversDecades) {
  Rng rng(2);
  SearchSpace s;
  s.add_log_continuous("lr", 1e-6, 1e-2);
  int low = 0;
  for (int i = 0; i < 400; ++i) {
    if (s.sample(rng).at("lr") < 1e-4) ++low;  // midpoint in log space
  }
  // Log-uniform: about half the mass below the geometric midpoint.
  EXPECT_NEAR(low / 400.0, 0.5, 0.1);
}

TEST(SearchSpace, NormalizeDenormalizeRoundTrip) {
  SearchSpace s;
  s.add_continuous("a", 0.0, 10.0);
  s.add_log_continuous("lr", 1e-5, 1e-1);
  const ParamSpec& a = s.spec("a");
  EXPECT_NEAR(a.denormalize(a.normalize(7.3)), 7.3, 1e-9);
  const ParamSpec& lr = s.spec("lr");
  EXPECT_NEAR(lr.denormalize(lr.normalize(3e-3)), 3e-3, 1e-9);
}

TEST(SearchSpace, ClampSnapsCategorical) {
  SearchSpace s;
  s.add_categorical("bs", {4, 8, 16});
  EXPECT_EQ(s.spec("bs").clamp(9.0), 8.0);
  EXPECT_EQ(s.spec("bs").clamp(100.0), 16.0);
}

TEST(SearchSpace, UnknownParamThrows) {
  SearchSpace s;
  s.add_boolean("x");
  EXPECT_THROW(s.spec("nope"), std::out_of_range);
}

TEST(SearchSpace, PaperTable1SpacesExist) {
  EXPECT_EQ(sgcnn_search_space().size(), 9u);
  EXPECT_EQ(cnn3d_search_space().size(), 9u);
  EXPECT_EQ(fusion_search_space().size(), 14u);
  // spot-check paper ranges
  const SearchSpace f = fusion_search_space();
  EXPECT_EQ(f.spec("num_fusion_layers").choices, (std::vector<double>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(f.spec("dropout1").hi, 0.50);
  EXPECT_DOUBLE_EQ(f.spec("dropout3").hi, 0.125);
}

TEST(GP, InterpolatesTrainingPoints) {
  TimeVaryingGP gp;
  std::vector<std::vector<double>> x = {{0.1}, {0.5}, {0.9}};
  gp.fit(x, {0, 0, 0}, {1.0, 2.0, 3.0});
  for (size_t i = 0; i < x.size(); ++i) {
    const auto p = gp.predict(x[i], 0);
    EXPECT_NEAR(p.mean, 1.0 + static_cast<double>(i), 0.15);
  }
}

TEST(GP, VarianceGrowsAwayFromData) {
  TimeVaryingGP gp;
  gp.fit({{0.5}}, {0}, {1.0});
  const auto near = gp.predict({0.5}, 0);
  const auto far = gp.predict({0.0}, 0);
  EXPECT_LT(near.variance, far.variance);
}

TEST(GP, TimeDecayDiscountsOldObservations) {
  GpConfig cfg;
  cfg.time_epsilon = 0.5;  // aggressive forgetting
  TimeVaryingGP gp(cfg);
  // Same x observed at t=0 (y=0) and t=10 (y=2): prediction at t=10 must
  // lean toward the recent value.
  gp.fit({{0.5}, {0.5}}, {0, 10}, {0.0, 2.0});
  const auto p = gp.predict({0.5}, 10);
  EXPECT_GT(p.mean, 1.2);
}

TEST(GP, UcbAddsExplorationBonus) {
  TimeVaryingGP gp;
  gp.fit({{0.5}}, {0}, {1.0});
  EXPECT_GT(gp.ucb({0.1}, 0, 2.0), gp.predict({0.1}, 0).mean);
}

TEST(GP, RejectsInconsistentInputs) {
  TimeVaryingGP gp;
  EXPECT_THROW(gp.fit({{0.1}}, {0, 1}, {1.0}), std::invalid_argument);
}

TEST(Pb2, InitialPopulationSizeAndBounds) {
  Pb2Config cfg;
  cfg.population = 6;
  SearchSpace s;
  s.add_continuous("x", 0.0, 1.0);
  Pb2 pb2(s, cfg);
  const auto pop = pb2.initial_population();
  EXPECT_EQ(pop.size(), 6u);
  for (const auto& c : pop) {
    EXPECT_GE(c.at("x"), 0.0);
    EXPECT_LE(c.at("x"), 1.0);
  }
}

TEST(Pb2, BottomQuantileClonesTopPerformer) {
  Pb2Config cfg;
  cfg.population = 4;
  cfg.quantile = 0.5;
  SearchSpace s;
  s.add_continuous("x", 0.0, 1.0);
  Pb2 pb2(s, cfg);
  pb2.initial_population();
  const auto directives = pb2.report({1.0f, 2.0f, 3.0f, 4.0f});
  // Trials 0 and 1 (best) keep going; 2 and 3 clone from {0, 1}.
  EXPECT_FALSE(directives[0].clone_weights_from.has_value());
  EXPECT_FALSE(directives[1].clone_weights_from.has_value());
  ASSERT_TRUE(directives[2].clone_weights_from.has_value());
  ASSERT_TRUE(directives[3].clone_weights_from.has_value());
  EXPECT_LT(*directives[2].clone_weights_from, 2);
  EXPECT_LT(*directives[3].clone_weights_from, 2);
}

TEST(Pb2, TracksBestScore) {
  Pb2Config cfg;
  cfg.population = 3;
  SearchSpace s;
  s.add_continuous("x", 0.0, 1.0);
  Pb2 pb2(s, cfg);
  pb2.initial_population();
  pb2.report({5.0f, 3.0f, 7.0f});
  EXPECT_FLOAT_EQ(pb2.best_score(), 3.0f);
  pb2.report({2.5f, 4.0f, 6.0f});
  EXPECT_FLOAT_EQ(pb2.best_score(), 2.5f);
}

TEST(Pb2, ScoreCountMismatchThrows) {
  Pb2Config cfg;
  cfg.population = 3;
  SearchSpace s;
  s.add_boolean("b");
  Pb2 pb2(s, cfg);
  pb2.initial_population();
  EXPECT_THROW(pb2.report({1.0f}), std::invalid_argument);
}

TEST(Pb2, OptimizesSyntheticQuadratic) {
  // Minimize (x - 0.7)^2: PB2 must drive the population toward 0.7.
  Pb2Config cfg;
  cfg.population = 8;
  cfg.seed = 5;
  SearchSpace s;
  s.add_continuous("x", 0.0, 1.0);
  Pb2 pb2(s, cfg);
  std::vector<HpoConfig> pop = pb2.initial_population();
  for (int interval = 0; interval < 12; ++interval) {
    std::vector<float> scores;
    scores.reserve(pop.size());
    for (const auto& c : pop) {
      const double x = c.at("x");
      scores.push_back(static_cast<float>((x - 0.7) * (x - 0.7)));
    }
    const auto directives = pb2.report(scores);
    for (size_t i = 0; i < pop.size(); ++i) pop[i] = directives[i].config;
  }
  EXPECT_LT(pb2.best_score(), 0.01f);
  EXPECT_NEAR(pb2.best_config().at("x"), 0.7, 0.15);
}

// ---- concurrent population training (paper §3.2: trials in parallel) ----

struct Pb2Trace {
  std::vector<std::vector<float>> interval_scores;
  HpoConfig best_config;
  float best_score = 0;
};

/// Run a miniature real-training PB2 search (persistent SG-CNN trials,
/// exploitation weight clones) with population members trained through
/// train_population on the given pool. Everything is keyed on fixed seeds,
/// so the trace must not depend on the pool at all.
Pb2Trace run_pb2_search(core::ThreadPool* pool) {
  data::PdbbindConfig pcfg;
  pcfg.num_complexes = 12;
  pcfg.core_size = 2;
  pcfg.settle_runs = 1;
  pcfg.settle_steps = 4;
  core::Rng rng(61);
  const auto recs = data::SyntheticPdbbind(pcfg).generate(rng);
  const data::TrainValSplit split = data::pdbbind_train_val(recs, 0.25f, rng);
  data::DatasetConfig dc;
  dc.voxel.grid_dim = 8;
  data::ComplexDataset train(&recs, split.train, dc);
  data::ComplexDataset val(&recs, split.val, dc);

  SearchSpace space;
  space.add_log_continuous("lr", 1e-3, 1e-2);
  space.add_categorical("cov_k", {2, 3});
  Pb2Config cfg;
  cfg.population = 3;
  cfg.seed = 67;
  Pb2 pb2(space, cfg);
  std::vector<HpoConfig> pop = pb2.initial_population();

  auto build = [&](const HpoConfig& c, uint64_t seed) {
    models::SgcnnConfig mc;
    mc.covalent_gather_width = 8;
    mc.noncovalent_gather_width = 16;
    mc.noncovalent_k = 2;
    mc.covalent_k = static_cast<int>(c.at("cov_k"));
    core::Rng mrng(seed);
    return std::make_unique<models::Sgcnn>(mc, mrng);
  };
  std::vector<std::unique_ptr<models::Sgcnn>> trials;
  for (size_t i = 0; i < pop.size(); ++i) trials.push_back(build(pop[i], 70 + i));

  Pb2Trace trace;
  for (int interval = 0; interval < 2; ++interval) {
    const std::vector<float> scores = train_population(
        pop.size(),
        [&](size_t i) {
          models::TrainConfig tc;
          tc.epochs = 1;
          tc.batch_size = 6;
          tc.seed = 80 + i;
          tc.lr = static_cast<float>(pop[i].at("lr"));
          return models::train_model(*trials[i], train, val, tc).epochs.back().val_mse;
        },
        pool);
    trace.interval_scores.push_back(scores);
    const auto directives = pb2.report(scores);
    for (size_t i = 0; i < pop.size(); ++i) {
      pop[i] = directives[i].config;
      if (directives[i].clone_weights_from) {
        const size_t donor = static_cast<size_t>(*directives[i].clone_weights_from);
        auto rebuilt = build(pop[i], 90 + i);
        if (rebuilt->num_parameters() == trials[donor]->num_parameters()) {
          models::copy_parameters(*rebuilt, *trials[donor]);
        }
        trials[i] = std::move(rebuilt);
      }
    }
  }
  trace.best_config = pb2.best_config();
  trace.best_score = pb2.best_score();
  return trace;
}

TEST(Pb2, ConcurrentPopulationTrainingKeepsTrajectoryBitwise) {
  const Pb2Trace serial = run_pb2_search(nullptr);
  core::ThreadPool pool(3);
  const Pb2Trace parallel = run_pb2_search(&pool);

  ASSERT_EQ(serial.interval_scores.size(), parallel.interval_scores.size());
  for (size_t t = 0; t < serial.interval_scores.size(); ++t) {
    ASSERT_EQ(serial.interval_scores[t].size(), parallel.interval_scores[t].size());
    for (size_t i = 0; i < serial.interval_scores[t].size(); ++i) {
      EXPECT_EQ(std::bit_cast<uint32_t>(serial.interval_scores[t][i]),
                std::bit_cast<uint32_t>(parallel.interval_scores[t][i]))
          << "interval " << t << " trial " << i;
    }
  }
  EXPECT_EQ(std::bit_cast<uint32_t>(serial.best_score),
            std::bit_cast<uint32_t>(parallel.best_score));
  EXPECT_EQ(serial.best_config, parallel.best_config);
}

TEST(Pb2, TrainPopulationPropagatesMemberFailure) {
  core::ThreadPool pool(2);
  EXPECT_THROW(train_population(
                   3,
                   [](size_t i) -> float {
                     if (i == 1) throw std::runtime_error("trial died");
                     return 1.0f;
                   },
                   &pool),
               std::runtime_error);
}

}  // namespace
}  // namespace df::hpo
