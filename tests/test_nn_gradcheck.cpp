// Finite-difference gradient checks for every hand-written backward pass in
// the nn package, plus end-to-end composite checks through whole models
// (voxelizer features → fused head loss) via check_model_gradients.
// Per-layer checks exclude dropout (stochastic); the composite checks run
// dropout ACTIVE under a fixed KeyedDropoutScope key, which makes the
// masks — and therefore the loss surface — deterministic across the
// finite-difference re-evaluations. BatchNorm uses a batch large enough
// for stable statistics.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/splits.h"
#include "gradcheck.h"
#include "models/fusion.h"
#include "nn/activations.h"
#include "nn/conv3d.h"
#include "nn/dense.h"
#include "nn/norm.h"
#include "nn/residual.h"
#include "nn/sequential.h"

namespace df::nn {
namespace {

using core::Rng;
using core::Tensor;
using testing::check_input_gradients;
using testing::check_param_gradients;

TEST(GradCheck, DenseParams) {
  Rng rng(1);
  Dense d(5, 4, rng);
  d.set_training(true);
  Tensor x = Tensor::randn({3, 5}, rng);
  check_param_gradients(d, [&] { return d.forward(x); });
}

TEST(GradCheck, DenseInput) {
  Rng rng(2);
  Dense d(5, 4, rng);
  d.set_training(true);
  check_input_gradients(d, Tensor::randn({3, 5}, rng));
}

TEST(GradCheck, ReluInput) {
  Rng rng(3);
  ReLU relu;
  relu.set_training(true);
  // keep values away from the kink
  Tensor x = Tensor::randn({4, 6}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.1f) x[i] = 0.5f;
  }
  check_input_gradients(relu, x);
}

TEST(GradCheck, LeakyReluInput) {
  Rng rng(4);
  LeakyReLU lrelu(0.1f);
  lrelu.set_training(true);
  Tensor x = Tensor::randn({4, 6}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.1f) x[i] = -0.5f;
  }
  check_input_gradients(lrelu, x);
}

TEST(GradCheck, SeluInput) {
  Rng rng(5);
  SELU selu;
  selu.set_training(true);
  Tensor x = Tensor::randn({4, 6}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.1f) x[i] = 0.4f;
  }
  check_input_gradients(selu, x);
}

TEST(GradCheck, Conv3dParams) {
  Rng rng(6);
  Conv3d conv(2, 3, 3, rng, 1, 1);
  conv.set_training(true);
  Tensor x = Tensor::randn({2, 2, 4, 4, 4}, rng);
  check_param_gradients(conv, [&] { return conv.forward(x); }, 1e-2f, 3e-2f);
}

TEST(GradCheck, Conv3dInput) {
  Rng rng(7);
  Conv3d conv(2, 3, 3, rng, 1, 1);
  conv.set_training(true);
  check_input_gradients(conv, Tensor::randn({1, 2, 4, 4, 4}, rng), 1e-2f, 3e-2f);
}

TEST(GradCheck, Conv3dStridedPaddedInput) {
  Rng rng(8);
  Conv3d conv(1, 2, 5, rng, 2, 2);
  conv.set_training(true);
  check_input_gradients(conv, Tensor::randn({1, 1, 8, 8, 8}, rng), 1e-2f, 3e-2f);
}

TEST(GradCheck, BatchNorm1dParamsAndInput) {
  Rng rng(9);
  BatchNorm1d bn(4);
  bn.set_training(true);
  Tensor x = Tensor::randn({16, 4}, rng);
  check_param_gradients(bn, [&] { return bn.forward(x); }, 1e-2f, 3e-2f);
  check_input_gradients(bn, x, 1e-2f, 4e-2f);
}

TEST(GradCheck, BatchNorm3dInput) {
  Rng rng(10);
  BatchNorm3d bn(2);
  bn.set_training(true);
  check_input_gradients(bn, Tensor::randn({4, 2, 3, 3, 3}, rng), 1e-2f, 4e-2f);
}

TEST(GradCheck, MaxPoolInput) {
  Rng rng(11);
  MaxPool3d pool(2, 2);
  pool.set_training(true);
  // spread values so the argmax is stable under +/- eps
  Tensor x({1, 1, 4, 4, 4});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>((i * 37) % 64) * 0.5f;
  check_input_gradients(pool, x, 1e-3f, 2e-2f);
}

TEST(GradCheck, ResidualDense) {
  Rng rng(12);
  auto inner = std::make_unique<Sequential>();
  inner->emplace<Dense>(4, 4, rng);
  Residual res(std::move(inner));
  res.set_training(true);
  Tensor x = Tensor::randn({3, 4}, rng);
  check_param_gradients(res, [&] { return res.forward(x); });
  check_input_gradients(res, x);
}

TEST(GradCheck, SequentialStack) {
  Rng rng(13);
  Sequential seq;
  auto d1 = std::make_unique<Dense>(6, 8, rng);
  // Keep SELU pre-activations away from its derivative kink at 0, where
  // finite differences are invalid (SELU' jumps from ~1.76 to ~1.05).
  d1->weight().value *= 0.2f;
  d1->bias().value.fill(1.0f);
  seq.add(std::move(d1));
  seq.emplace<SELU>();
  seq.emplace<Dense>(8, 3, rng);
  seq.set_training(true);
  Tensor x = Tensor::randn({2, 6}, rng);
  check_param_gradients(seq, [&] { return seq.forward(x); });
  check_input_gradients(seq, x);
}

// ---- end-to-end composite checks (real featurized samples) ----

data::Sample featurized_sample(uint64_t seed) {
  data::PdbbindConfig pcfg;
  pcfg.num_complexes = 2;
  pcfg.core_size = 1;
  pcfg.settle_runs = 1;
  pcfg.settle_steps = 4;
  Rng rng(seed);
  static std::vector<data::ComplexRecord> recs;  // keep alive for the dataset view
  recs = data::SyntheticPdbbind(pcfg).generate(rng);
  data::DatasetConfig dc;
  dc.voxel.grid_dim = 8;
  data::ComplexDataset ds(&recs, {0}, dc);
  Rng frng(seed + 1);
  return ds.get(0, frng);
}

models::Cnn3dConfig composite_cnn_config() {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 3;
  cfg.conv_filters2 = 4;
  cfg.dense_nodes = 8;
  cfg.dropout1 = 0.2f;  // active: keyed masks keep the check deterministic
  cfg.dropout2 = 0.1f;
  return cfg;
}

models::SgcnnConfig composite_sg_config() {
  models::SgcnnConfig cfg;
  cfg.covalent_gather_width = 6;
  cfg.noncovalent_gather_width = 12;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return cfg;
}

TEST(GradCheckComposite, Cnn3dEndToEndWithDropout) {
  const data::Sample s = featurized_sample(101);
  Rng rng(15);
  models::Cnn3d model(composite_cnn_config(), rng);
  df::testing::check_model_gradients(model, s, /*dropout_key=*/0xC0FFEEu);
}

TEST(GradCheckComposite, SgcnnEndToEnd) {
  const data::Sample s = featurized_sample(103);
  Rng rng(16);
  models::Sgcnn model(composite_sg_config(), rng);
  df::testing::check_model_gradients(model, s, /*dropout_key=*/0xC0FFEEu);
}

TEST(GradCheckComposite, CoherentFusionEndToEndWithDropout) {
  // The full paper pipeline in one check: voxel grid through the 3D-CNN
  // trunk, spatial graph through the SG-CNN, both latents through the
  // fusion head, gradients back through everything — with all three
  // dropout rates non-zero.
  const data::Sample s = featurized_sample(105);
  Rng rng(17);
  auto cnn = std::make_shared<models::Cnn3d>(composite_cnn_config(), rng);
  auto sg = std::make_shared<models::Sgcnn>(composite_sg_config(), rng);
  models::FusionConfig fc;
  fc.kind = models::FusionKind::Coherent;
  fc.fusion_nodes = 8;
  fc.num_fusion_layers = 3;
  fc.dropout1 = 0.3f;
  fc.dropout2 = 0.2f;
  fc.dropout3 = 0.1f;
  models::FusionModel fusion(fc, cnn, sg, rng);
  df::testing::check_model_gradients(fusion, s, /*dropout_key=*/0xFADEDu);
}

TEST(GradCheckComposite, KeyedDropoutMakesForwardDeterministic) {
  // The property the composite checks (and the parallel trainer) lean on.
  const data::Sample s = featurized_sample(107);
  Rng rng(18);
  models::Cnn3d model(composite_cnn_config(), rng);
  model.set_training(true);
  float a, b, c;
  {
    nn::KeyedDropoutScope k(42);
    a = model.forward_train(s);
  }
  {
    nn::KeyedDropoutScope k(42);
    b = model.forward_train(s);
  }
  {
    nn::KeyedDropoutScope k(43);
    c = model.forward_train(s);
  }
  EXPECT_EQ(a, b);  // same key, same masks, same prediction
  EXPECT_NE(a, c);  // different key actually changes the masks
}

TEST(GradCheck, ConvPoolDenseStack) {
  Rng rng(14);
  Sequential seq;
  seq.emplace<Conv3d>(1, 2, 3, rng, 1, 1);
  seq.emplace<ReLU>();
  seq.emplace<MaxPool3d>(2, 2);
  seq.emplace<Flatten>();
  seq.emplace<Dense>(2 * 2 * 2 * 2, 3, rng);
  seq.set_training(true);
  Tensor x = Tensor::randn({1, 1, 4, 4, 4}, rng);
  check_param_gradients(seq, [&] { return seq.forward(x); }, 1e-2f, 3e-2f);
}

}  // namespace
}  // namespace df::nn
