// Serving hot-path pins for the zero-allocation engine:
//   * fused GEMM epilogues (bias + activation on the hot micro-tile) agree
//     with the unfused gemm -> bias -> activation sequence,
//   * the batched block-diagonal SG-CNN / fusion forward is bitwise equal
//     to the per-pose path for randomized graphs, including single-atom
//     ligands and empty pockets,
//   * a RegressorScorer's workspace arenas can be rewound and reused across
//     hundreds of batches without drifting a single bit,
//   * a warmed steady-state score() performs zero tensor heap allocations
//     (core::alloc_count() pins the Tensor/Workspace instrumentation hook).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "chem/conformer.h"
#include "chem/graph_featurizer.h"
#include "chem/voxelizer.h"
#include "core/gemm.h"
#include "core/rng.h"
#include "core/workspace.h"
#include "data/target.h"
#include "models/fusion.h"
#include "serve/scorer.h"

namespace df {
namespace {

using core::Epilogue;
using core::EpilogueAct;
using core::Rng;
using core::Tensor;

// ---- fixtures -----------------------------------------------------------

chem::VoxelConfig tiny_voxel() {
  chem::VoxelConfig cfg;
  cfg.grid_dim = 8;
  return cfg;
}

models::SgcnnConfig tiny_sg_cfg() {
  models::SgcnnConfig cfg;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  cfg.covalent_gather_width = 12;
  cfg.noncovalent_gather_width = 16;
  return cfg;
}

models::Cnn3dConfig tiny_cnn_cfg() {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  return cfg;
}

std::unique_ptr<models::FusionModel> make_fusion(uint64_t seed = 43) {
  Rng rng(seed);
  auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(), rng);
  auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
  models::FusionConfig fcfg;
  fcfg.kind = models::FusionKind::Mid;
  fcfg.model_specific_layers = true;
  fcfg.fusion_nodes = 12;
  return std::make_unique<models::FusionModel>(fcfg, cnn, sg, rng);
}

/// Random spatial graph with `n` nodes (ligand nodes first).
graph::SpatialGraph random_graph(Rng& rng, int n, int n_ligand, int feature_dim) {
  graph::SpatialGraph g;
  g.node_features = Tensor::randn({n, feature_dim}, rng);
  g.num_ligand_nodes = n_ligand;
  for (int e = 0; e < 3 * n; ++e) {
    const auto a = static_cast<int32_t>(rng.randint(0, n - 1));
    const auto b = static_cast<int32_t>(rng.randint(0, n - 1));
    if (rng.uniform() < 0.4) g.covalent.add_undirected(a, b);
    else g.noncovalent.add_undirected(a, b);
  }
  return g;
}

std::vector<serve::PoseInput> make_poses(int n, const std::vector<chem::Atom>* pocket, Rng& rng) {
  std::vector<serve::PoseInput> poses;
  for (int i = 0; i < n; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = pocket;
    poses.push_back(std::move(p));
  }
  return poses;
}

// ---- workspace arena ----------------------------------------------------

TEST(Workspace, BumpAllocAndReset) {
  core::Workspace ws(/*initial_floats=*/64);
  float* a = ws.alloc(10);
  float* b = ws.alloc(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  const size_t used = ws.in_use();
  EXPECT_GT(used, 0u);
  ws.reset();
  EXPECT_EQ(ws.in_use(), 0u);
  // Reset hands the same bytes out again.
  EXPECT_EQ(ws.alloc(10), a);
}

TEST(Workspace, CheckpointRestoreReleasesTail) {
  core::Workspace ws(64);
  ws.alloc(16);
  const auto cp = ws.checkpoint();
  float* t = ws.alloc(1 << 12);  // forces block growth
  ASSERT_NE(t, nullptr);
  const size_t grown = ws.in_use();
  ws.restore(cp);
  EXPECT_LT(ws.in_use(), grown);
  EXPECT_GT(ws.capacity(), 0u);
}

TEST(Workspace, BindRoutesTensorStorageToArena) {
  core::Workspace ws;
  EXPECT_EQ(core::Workspace::current(), nullptr);
  const uint64_t before = core::alloc_count();
  {
    core::Workspace::Bind bind(ws);
    EXPECT_EQ(core::Workspace::current(), &ws);
    // Warm the arena (may grow once), then further tensors are free.
    { Tensor warm({64, 64}); }
    const uint64_t after_warm = core::alloc_count();
    Tensor t({16, 16});
    EXPECT_TRUE(t.borrowed());
    Tensor u = t * 2.0f;  // copies also draw from the arena
    EXPECT_TRUE(u.borrowed());
    EXPECT_EQ(core::alloc_count(), after_warm);
  }
  EXPECT_EQ(core::Workspace::current(), nullptr);
  Tensor heap({4});
  EXPECT_FALSE(heap.borrowed());
  EXPECT_GT(core::alloc_count(), before);
}

// ---- fused epilogue =====  gemm + bias + activation ---------------------

TEST(FusedEpilogue, MatchesUnfusedReferenceAcrossShapesAndActs) {
  Rng rng(7);
  const struct {
    int64_t m, n, k;
  } shapes[] = {{1, 12, 12}, {33, 24, 38}, {8, 64, 500}, {70, 48, 192}, {5, 100, 40}};
  const EpilogueAct acts[] = {EpilogueAct::kNone,      EpilogueAct::kReLU,
                              EpilogueAct::kLeakyReLU, EpilogueAct::kSELU,
                              EpilogueAct::kSigmoid,   EpilogueAct::kTanh};
  for (const auto& s : shapes) {
    Tensor a = Tensor::randn({s.m, s.k}, rng);
    Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor bias = Tensor::randn({s.n}, rng);
    for (EpilogueAct act : acts) {
      Epilogue ep;
      ep.act = act;
      ep.bias_col = bias.data();
      Tensor fused({s.m, s.n});
      core::sgemm(false, false, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, fused.data(), s.n,
                  false, &ep);
      // Unfused reference on the same kernel: plain gemm, then bias, then
      // the same activation applied through a 1-row epilogue-only pass
      // (k=0 gemm), which exercises the scalar reference implementation.
      Tensor ref({s.m, s.n});
      core::sgemm(false, false, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, ref.data(), s.n);
      Epilogue tail = ep;
      core::sgemm(false, false, s.m, s.n, 0, a.data(), s.k, b.data(), s.n, ref.data(), s.n,
                  /*accumulate=*/true, &tail);
      for (int64_t i = 0; i < fused.numel(); ++i) {
        EXPECT_NEAR(fused[i], ref[i], 2e-6f)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " act=" << static_cast<int>(act);
      }
      // And against the naive triple loop with the same epilogue semantics.
      Tensor naive({s.m, s.n});
      core::sgemm_naive(false, false, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, naive.data(),
                        s.n, false, &ep);
      for (int64_t i = 0; i < fused.numel(); ++i) {
        EXPECT_NEAR(fused[i], naive[i], 5e-4f) << "naive mismatch act=" << static_cast<int>(act);
      }
    }
  }
}

TEST(FusedEpilogue, RowBiasAndAccumulate) {
  Rng rng(11);
  const int64_t m = 9, n = 40, k = 77;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor rbias = Tensor::randn({m}, rng);
  Tensor base = Tensor::randn({m, n}, rng);

  Epilogue ep;
  ep.act = EpilogueAct::kReLU;
  ep.bias_row = rbias.data();
  Tensor fused = base;
  core::sgemm(false, false, m, n, k, a.data(), k, b.data(), n, fused.data(), n,
              /*accumulate=*/true, &ep);

  Tensor ref = base;
  core::sgemm(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n, /*accumulate=*/true);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      const float v = ref.at(i, j) + rbias[i];
      ref.at(i, j) = v > 0.0f ? v : 0.0f;
    }
  for (int64_t i = 0; i < fused.numel(); ++i) EXPECT_EQ(fused[i], ref[i]);
}

// ---- batched block-diagonal SG-CNN / fusion ≡ per pose ------------------

TEST(PackGraphs, LayoutAndErrors) {
  Rng rng(3);
  graph::SpatialGraph a = random_graph(rng, 5, 3, 7);
  graph::SpatialGraph b = random_graph(rng, 2, 1, 7);
  const auto packed = graph::pack_graphs({&a, &b});
  EXPECT_EQ(packed.num_graphs(), 2);
  EXPECT_EQ(packed.total_nodes(), 7);
  EXPECT_EQ(packed.node_offset, (std::vector<int64_t>{0, 5, 7}));
  EXPECT_EQ(packed.ligand_counts, (std::vector<int64_t>{3, 1}));
  EXPECT_EQ(packed.covalent.size() + packed.noncovalent.size(),
            a.covalent.size() + a.noncovalent.size() + b.covalent.size() + b.noncovalent.size());
  // Second graph's rows follow the first, edges shifted by its offset.
  EXPECT_EQ(packed.node_features.at(5, 0), b.node_features.at(0, 0));
  for (size_t e = 0; e < packed.covalent.size(); ++e) {
    EXPECT_LT(packed.covalent.src[e], 7);
    EXPECT_GE(packed.covalent.src[e], 0);
  }

  EXPECT_THROW(graph::pack_graphs({}), std::invalid_argument);
  graph::SpatialGraph empty;
  EXPECT_THROW(graph::pack_graphs({&empty}), std::invalid_argument);
}

TEST(BatchedGraph, SgcnnBatchBitwiseEqualsPerPose) {
  Rng rng(21);
  models::SgcnnConfig cfg = tiny_sg_cfg();
  cfg.node_features = 9;
  Rng mrng(77);
  models::Sgcnn model(cfg, mrng);
  model.set_training(false);

  // Randomized sizes plus the edge cases: a single-atom ligand graph (no
  // edges) and a ligand-only graph (empty pocket => all nodes are ligand).
  std::vector<graph::SpatialGraph> graphs;
  for (int i = 0; i < 9; ++i) {
    const int n = 2 + static_cast<int>(rng.randint(0, 30));
    graphs.push_back(random_graph(rng, n, std::max(1, n / 2), 9));
  }
  graphs.push_back(random_graph(rng, 1, 1, 9));  // single atom, no edges
  {
    graph::SpatialGraph lig_only = random_graph(rng, 6, 6, 9);  // empty pocket
    graphs.push_back(std::move(lig_only));
  }

  std::vector<data::Sample> samples(graphs.size());
  std::vector<const data::Sample*> batch;
  for (size_t i = 0; i < graphs.size(); ++i) {
    samples[i].graph = graphs[i];
    batch.push_back(&samples[i]);
  }

  std::vector<float> single;
  for (const auto& s : samples) single.push_back(model.predict(s));
  const std::vector<float> batched = model.predict_batch(batch);
  ASSERT_EQ(batched.size(), single.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(batched[i], single[i]) << "pose " << i << " diverged (must be bitwise)";
  }

  EXPECT_TRUE(model.predict_batch({}).empty());
}

TEST(BatchedGraph, FusionBatchBitwiseEqualsPerPoseOnRealFeaturization) {
  Rng rng(22);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const std::vector<chem::Atom> empty_pocket;
  const chem::Voxelizer vox(tiny_voxel());
  const chem::GraphFeaturizer feat{chem::GraphFeaturizerConfig{}};

  std::vector<data::Sample> samples;
  for (int i = 0; i < 7; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    // Every other pose scores against an empty pocket.
    const std::vector<chem::Atom>& pk = (i % 2 == 0) ? pocket : empty_pocket;
    data::Sample s;
    s.voxel = vox.voxelize(lig, pk, {});
    s.graph = feat.featurize(lig, pk);
    samples.push_back(std::move(s));
  }
  std::vector<const data::Sample*> batch;
  for (const auto& s : samples) batch.push_back(&s);

  auto fusion = make_fusion();
  fusion->set_training(false);
  std::vector<float> single;
  for (const auto& s : samples) single.push_back(fusion->predict(s));
  const std::vector<float> batched = fusion->predict_batch(batch);
  ASSERT_EQ(batched.size(), single.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(batched[i], single[i]) << "pose " << i << " diverged (must be bitwise)";
  }
}

// ---- pocket grid reuse --------------------------------------------------

TEST(Voxelizer, PocketGridGraftBitwiseEqualsJointVoxelization) {
  Rng rng(5);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const chem::Voxelizer vox(tiny_voxel());
  const Tensor pocket_grid = vox.voxelize_pocket(pocket, {});
  for (int i = 0; i < 4; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    const Tensor joint = vox.voxelize(lig, pocket, {});
    const Tensor grafted = vox.voxelize_ligand_onto(lig, pocket_grid, {});
    ASSERT_EQ(joint.shape(), grafted.shape());
    EXPECT_EQ(std::memcmp(joint.data(), grafted.data(),
                          static_cast<size_t>(joint.numel()) * sizeof(float)),
              0);
  }
}

// ---- scorer: workspace reuse + zero allocations -------------------------

TEST(ScorerHotPath, WorkspaceReuseIsBitwiseStableOver100Batches) {
  Rng rng(33);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto poses = make_poses(6, &pocket, rng);
  std::vector<const serve::PoseInput*> ptrs;
  for (const auto& p : poses) ptrs.push_back(&p);

  serve::RegressorScorer scorer("fusion", make_fusion(), tiny_voxel(), {},
                                /*featurize_threads=*/2);
  const std::vector<float> first = scorer.score(ptrs);
  ASSERT_EQ(first.size(), ptrs.size());
  for (int rep = 0; rep < 100; ++rep) {
    const std::vector<float> again = scorer.score(ptrs);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      ASSERT_EQ(again[i], first[i]) << "rep " << rep << " pose " << i;
    }
  }
  EXPECT_EQ(scorer.phase_stats().batches, 101u);
  EXPECT_EQ(scorer.phase_stats().poses, 101u * ptrs.size());
}

TEST(ScorerHotPath, SteadyStateScoreMakesZeroTensorHeapAllocations) {
  Rng rng(34);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto poses = make_poses(8, &pocket, rng);
  std::vector<const serve::PoseInput*> ptrs;
  for (const auto& p : poses) ptrs.push_back(&p);

  for (int feat_threads : {0, 2}) {
    serve::RegressorScorer scorer("fusion", make_fusion(), tiny_voxel(), {}, feat_threads);
    // Warmup sizes the arenas; afterwards every tensor in featurize +
    // forward lives in workspace memory.
    for (int i = 0; i < 3; ++i) scorer.score(ptrs);
    const uint64_t before = core::alloc_count();
    const std::vector<float> out = scorer.score(ptrs);
    EXPECT_EQ(core::alloc_count(), before)
        << "steady-state score() touched the heap for tensor data "
        << "(featurize_threads=" << feat_threads << ")";
    ASSERT_EQ(out.size(), ptrs.size());
  }
}

}  // namespace
}  // namespace df
