#include <gtest/gtest.h>

#include "chem/smiles.h"

namespace df::chem {
namespace {

TEST(Smiles, ParsesLinearChain) {
  const Molecule m = parse_smiles("CCO");  // ethanol heavy atoms
  ASSERT_EQ(m.num_atoms(), 3u);
  EXPECT_EQ(m.atoms()[0].element, Element::C);
  EXPECT_EQ(m.atoms()[2].element, Element::O);
  EXPECT_EQ(m.num_bonds(), 2u);
  // implicit hydrogens: CH3-CH2-OH
  EXPECT_EQ(m.atoms()[0].implicit_h, 3);
  EXPECT_EQ(m.atoms()[1].implicit_h, 2);
  EXPECT_EQ(m.atoms()[2].implicit_h, 1);
}

TEST(Smiles, ParsesBranches) {
  const Molecule m = parse_smiles("CC(C)C");  // isobutane
  ASSERT_EQ(m.num_atoms(), 4u);
  EXPECT_EQ(m.degree(1), 3);
}

TEST(Smiles, ParsesRings) {
  const Molecule m = parse_smiles("C1CCCCC1");  // cyclohexane
  ASSERT_EQ(m.num_atoms(), 6u);
  EXPECT_EQ(m.num_bonds(), 6u);
  EXPECT_EQ(m.num_rings(), 1);
}

TEST(Smiles, ParsesAromaticLowercase) {
  const Molecule m = parse_smiles("c1ccccc1");  // benzene
  ASSERT_EQ(m.num_atoms(), 6u);
  for (const Atom& a : m.atoms()) EXPECT_TRUE(a.aromatic);
}

TEST(Smiles, ParsesBondOrders) {
  const Molecule m = parse_smiles("C=C");
  ASSERT_EQ(m.num_bonds(), 1u);
  EXPECT_EQ(m.bonds()[0].order, 2);
  const Molecule t = parse_smiles("C#N");
  EXPECT_EQ(t.bonds()[0].order, 3);
}

TEST(Smiles, ParsesTwoLetterHalogens) {
  const Molecule m = parse_smiles("ClCBr");
  ASSERT_EQ(m.num_atoms(), 3u);
  EXPECT_EQ(m.atoms()[0].element, Element::Cl);
  EXPECT_EQ(m.atoms()[2].element, Element::Br);
}

TEST(Smiles, ParsesBracketChargeAndH) {
  const Molecule m = parse_smiles("[NH3+]CC([O-])=O");  // glycine-ish (zwitterion)
  EXPECT_EQ(m.atoms()[0].formal_charge, 1);
  EXPECT_EQ(m.atoms()[0].implicit_h, 3);
  bool found_neg_o = false;
  for (const Atom& a : m.atoms()) {
    if (a.element == Element::O && a.formal_charge == -1) found_neg_o = true;
  }
  EXPECT_TRUE(found_neg_o);
}

TEST(Smiles, MalformedInputsThrow) {
  EXPECT_THROW(parse_smiles("C(C"), std::invalid_argument);   // unclosed branch
  EXPECT_THROW(parse_smiles("C1CC"), std::invalid_argument);  // unclosed ring
  EXPECT_THROW(parse_smiles("C)"), std::invalid_argument);    // stray close
  EXPECT_THROW(parse_smiles("[C"), std::invalid_argument);    // unterminated bracket
  EXPECT_THROW(parse_smiles("?"), std::invalid_argument);     // garbage
}

struct RoundTripCase {
  const char* smiles;
  size_t atoms;
  size_t bonds;
};

class SmilesRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(SmilesRoundTrip, WriteParsePreservesGraph) {
  const RoundTripCase& c = GetParam();
  const Molecule m = parse_smiles(c.smiles);
  EXPECT_EQ(m.num_atoms(), c.atoms);
  EXPECT_EQ(m.num_bonds(), c.bonds);
  const std::string out = write_smiles(m);
  const Molecule m2 = parse_smiles(out);
  EXPECT_EQ(m2.num_atoms(), m.num_atoms()) << out;
  EXPECT_EQ(m2.num_bonds(), m.num_bonds()) << out;
  EXPECT_EQ(m2.num_rings(), m.num_rings()) << out;
  // element multiset must match
  std::vector<int> h1(kNumElements, 0), h2(kNumElements, 0);
  for (const Atom& a : m.atoms()) ++h1[element_index(a.element)];
  for (const Atom& a : m2.atoms()) ++h2[element_index(a.element)];
  EXPECT_EQ(h1, h2) << out;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SmilesRoundTrip,
    ::testing::Values(RoundTripCase{"CCO", 3, 2}, RoundTripCase{"CC(C)C", 4, 3},
                      RoundTripCase{"C1CCCCC1", 6, 6}, RoundTripCase{"c1ccccc1", 6, 6},
                      RoundTripCase{"CC(=O)O", 4, 3}, RoundTripCase{"C1CC1CC2CC2", 7, 8},
                      RoundTripCase{"N#CC1CC1", 5, 5}, RoundTripCase{"ClC(Br)F", 4, 3}));

TEST(Smiles, GeneratedMoleculesRoundTrip) {
  core::Rng rng(5);
  MoleculeGenConfig cfg;
  cfg.salt_probability = 0.3f;
  for (int i = 0; i < 20; ++i) {
    const Molecule m = generate_molecule(cfg, rng);
    const std::string s = write_smiles(m);
    const Molecule m2 = parse_smiles(s);
    EXPECT_EQ(m2.num_atoms(), m.num_atoms()) << s;
    EXPECT_EQ(m2.num_bonds(), m.num_bonds()) << s;
  }
}

TEST(Smiles, EmptyMolecule) { EXPECT_EQ(write_smiles(Molecule{}), ""); }

TEST(Smiles, DisconnectedFragmentsDotSeparated) {
  Molecule m;
  m.add_atom(Element::C);
  m.add_atom(Element::Cl);
  const std::string s = write_smiles(m);
  EXPECT_NE(s.find('.'), std::string::npos);
  const Molecule m2 = parse_smiles(s);
  EXPECT_EQ(m2.num_atoms(), 2u);
}

}  // namespace
}  // namespace df::chem
