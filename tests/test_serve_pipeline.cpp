// Pipelined scoring hot path + cross-request pocket cache pins (ISSUE 10):
//   * the pocket-aware voxel graft (4-arg voxelize_ligand_onto) is bitwise
//     identical to joint voxelization at feature-set v2, where the 3-arg
//     overload still refuses,
//   * GraphFeaturizer::featurize against a pre-built crop CellList equals
//     the self-built path bitwise,
//   * PocketCache: verified hits return the same entry, LRU eviction and
//     config-change invalidation are observable in stats, held entries
//     survive eviction,
//   * RegressorScorer's stage pipeline is bitwise identical to sequential
//     score() at every (depth, featurize_threads) combination, and through
//     an ordered-stream ScoringService at every (workers, depth, cache)
//     combination,
//   * cache hit == cache miss bitwise at feature-set v1 AND v2 (v2 is
//     where the cache re-enables pocket amortization),
//   * featurize-stage errors surface at collect() as typed exceptions and
//     leave the pipeline usable,
//   * a warmed pipeline at depth 2 scores with zero tensor heap
//     allocations while stages overlap.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chem/cell_list.h"
#include "chem/conformer.h"
#include "chem/graph_featurizer.h"
#include "chem/voxelizer.h"
#include "core/rng.h"
#include "core/workspace.h"
#include "data/target.h"
#include "models/cnn3d.h"
#include "models/fusion.h"
#include "models/sgcnn.h"
#include "serve/pocket_cache.h"
#include "serve/registry.h"
#include "serve/scorer.h"
#include "serve/service.h"

namespace df {
namespace {

using core::Rng;
using core::Tensor;

// ---- fixtures -----------------------------------------------------------

chem::VoxelConfig tiny_voxel(int fsv = 1) {
  chem::VoxelConfig cfg;
  cfg.grid_dim = 8;
  cfg.feature_set_version = fsv;
  return cfg;
}

chem::GraphFeaturizerConfig tiny_graph(int fsv = 1) {
  chem::GraphFeaturizerConfig cfg;
  cfg.feature_set_version = fsv;
  return cfg;
}

models::Cnn3dConfig tiny_cnn_cfg(int in_channels) {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.in_channels = in_channels;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  return cfg;
}

models::SgcnnConfig tiny_sg_cfg() {
  models::SgcnnConfig cfg;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  cfg.covalent_gather_width = 12;
  cfg.noncovalent_gather_width = 16;
  return cfg;
}

std::unique_ptr<models::FusionModel> make_fusion(int voxel_channels, uint64_t seed = 43) {
  Rng rng(seed);
  auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(voxel_channels), rng);
  auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
  models::FusionConfig fcfg;
  fcfg.kind = models::FusionKind::Mid;
  fcfg.model_specific_layers = true;
  fcfg.fusion_nodes = 12;
  return std::make_unique<models::FusionModel>(fcfg, cnn, sg, rng);
}

std::vector<serve::PoseInput> make_poses(int n, const std::vector<chem::Atom>* pocket, Rng& rng) {
  std::vector<serve::PoseInput> poses;
  poses.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = pocket;
    poses.push_back(std::move(p));
  }
  return poses;
}

std::vector<const serve::PoseInput*> ptrs_of(const std::vector<serve::PoseInput>& poses) {
  std::vector<const serve::PoseInput*> out;
  out.reserve(poses.size());
  for (const auto& p : poses) out.push_back(&p);
  return out;
}

void expect_bitwise(const std::vector<float>& got, const std::vector<float>& want,
                    const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    // EXPECT_EQ on floats is exact — bitwise for finite values.
    EXPECT_EQ(got[i], want[i]) << what << " pose " << i;
  }
}

// ---- v2 pocket-aware voxel graft ----------------------------------------

TEST(PocketGraft, V2GraftBitwiseEqualsJointVoxelization) {
  Rng rng(71);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const chem::Voxelizer vox(tiny_voxel(2));
  const Tensor pocket_grid = vox.voxelize_pocket(pocket, {});
  for (int i = 0; i < 4; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    const Tensor joint = vox.voxelize(lig, pocket, {});
    const Tensor grafted = vox.voxelize_ligand_onto(lig, pocket, pocket_grid, {});
    ASSERT_EQ(joint.shape(), grafted.shape());
    EXPECT_EQ(std::memcmp(joint.data(), grafted.data(),
                          static_cast<size_t>(joint.numel()) * sizeof(float)),
              0)
        << "v2 graft diverged from joint voxelization, ligand " << i;
    // The pocket-blind overload still refuses v2 — only the pocket-aware
    // graft can re-derive the interface H-bond coupling.
    EXPECT_THROW(vox.voxelize_ligand_onto(lig, pocket_grid, {}), std::logic_error);
  }

  // At v1 the pocket-aware overload must collapse to the historical path.
  const chem::Voxelizer vox1(tiny_voxel(1));
  const Tensor grid1 = vox1.voxelize_pocket(pocket, {});
  chem::Molecule lig = chem::generate_molecule({}, rng);
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  const Tensor a = vox1.voxelize_ligand_onto(lig, grid1, {});
  const Tensor b = vox1.voxelize_ligand_onto(lig, pocket, grid1, {});
  EXPECT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)), 0);
}

TEST(PocketGraft, PrebuiltCropCellsBitwiseEqualsSelfBuilt) {
  Rng rng(72);
  const auto pocket = data::make_pocket({4.5f, 80, 0.6f, 0.5f, 0.1f}, rng);
  std::vector<core::Vec3> pos;
  pos.reserve(pocket.size());
  for (const chem::Atom& a : pocket) pos.push_back(a.pos);

  for (int fsv : {1, 2}) {
    const chem::GraphFeaturizer feat(tiny_graph(fsv));
    chem::CellList cells;
    cells.build(pos.data(), static_cast<int32_t>(pos.size()),
                feat.config().noncovalent_threshold);
    for (int i = 0; i < 3; ++i) {
      chem::Molecule lig = chem::generate_molecule({}, rng);
      chem::embed_conformer(lig, rng);
      lig.translate(core::Vec3{} - lig.centroid());
      const graph::SpatialGraph self = feat.featurize(lig, pocket);
      const graph::SpatialGraph pre = feat.featurize(lig, pocket, &cells);
      ASSERT_EQ(self.num_nodes(), pre.num_nodes()) << "fsv " << fsv;
      ASSERT_EQ(self.node_features.shape(), pre.node_features.shape());
      EXPECT_EQ(std::memcmp(self.node_features.data(), pre.node_features.data(),
                            static_cast<size_t>(self.node_features.numel()) * sizeof(float)),
                0)
          << "fsv " << fsv << " ligand " << i;
      EXPECT_EQ(self.covalent.src, pre.covalent.src);
      EXPECT_EQ(self.covalent.dst, pre.covalent.dst);
      EXPECT_EQ(self.noncovalent.src, pre.noncovalent.src);
      EXPECT_EQ(self.noncovalent.dst, pre.noncovalent.dst);
    }
  }
}

// ---- pocket cache -------------------------------------------------------

TEST(PocketCacheTest, VerifiedHitsReturnTheSameEntry) {
  Rng rng(73);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const chem::Voxelizer vox(tiny_voxel());
  const chem::GraphFeaturizer feat(tiny_graph());

  serve::PocketCache cache(4);
  EXPECT_EQ(cache.capacity(), 4u);
  const auto e1 = cache.lookup(pocket, {}, vox, feat);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 1u);

  const auto e2 = cache.lookup(pocket, {}, vox, feat);
  EXPECT_EQ(e1.get(), e2.get()) << "hit minted a new entry";
  EXPECT_EQ(cache.stats().hits, 1u);

  // The cached grid is the protein-only voxelization, bitwise, and owns
  // its storage on the heap (it must survive arena rewinds).
  const Tensor want = vox.voxelize_pocket(pocket, {});
  ASSERT_EQ(e1->grid.shape(), want.shape());
  EXPECT_EQ(std::memcmp(e1->grid.data(), want.data(),
                        static_cast<size_t>(want.numel()) * sizeof(float)),
            0);
  EXPECT_FALSE(e1->grid.borrowed());
  EXPECT_TRUE(e1->crop_cells.built());

  // A different site center is a different entry.
  const auto e3 = cache.lookup(pocket, {1.0f, 0.0f, 0.0f}, vox, feat);
  EXPECT_NE(e1.get(), e3.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PocketCacheTest, LruEvictionAndConfigInvalidation) {
  Rng ra(74), rb(75), rc(76);
  const auto pa = data::make_pocket({4.5f, 20, 0.6f, 0.5f, 0.1f}, ra);
  const auto pb = data::make_pocket({4.5f, 20, 0.6f, 0.5f, 0.1f}, rb);
  const auto pc = data::make_pocket({4.5f, 20, 0.6f, 0.5f, 0.1f}, rc);
  const chem::Voxelizer vox(tiny_voxel());
  const chem::GraphFeaturizer feat(tiny_graph());

  serve::PocketCache cache(2);
  cache.lookup(pa, {}, vox, feat);
  const auto held_b = cache.lookup(pb, {}, vox, feat);
  EXPECT_EQ(cache.size(), 2u);

  // Touch A so B is the LRU victim, then insert C.
  cache.lookup(pa, {}, vox, feat);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.lookup(pc, {}, vox, feat);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The evicted receptor misses (rebuild), the survivors hit.
  const uint64_t misses_before = cache.stats().misses;
  cache.lookup(pb, {}, vox, feat);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);

  // A held shared_ptr outlives its entry's eviction.
  ASSERT_NE(held_b, nullptr);
  EXPECT_GT(held_b->grid.numel(), 0);
  EXPECT_EQ(held_b->atoms.size(), pb.size());

  // Any featurization-config change is a different key — that IS the
  // invalidation semantics: feature-set version...
  serve::PocketCache fresh(4);
  fresh.lookup(pa, {}, vox, feat);
  const chem::Voxelizer vox_v2(tiny_voxel(2));
  const chem::GraphFeaturizer feat_v2(tiny_graph(2));
  fresh.lookup(pa, {}, vox_v2, feat_v2);
  EXPECT_EQ(fresh.stats().misses, 2u);
  EXPECT_EQ(fresh.stats().hits, 0u);
  // ... and any grid knob.
  chem::VoxelConfig wide = tiny_voxel();
  wide.grid_dim = 12;
  fresh.lookup(pa, {}, chem::Voxelizer(wide), feat);
  EXPECT_EQ(fresh.stats().misses, 3u);
  EXPECT_EQ(fresh.stats().hits, 0u);
}

TEST(PocketCacheTest, ConcurrentLookupsBuildOnceAndAgree) {
  Rng rng(77);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const chem::Voxelizer vox(tiny_voxel());
  const chem::GraphFeaturizer feat(tiny_graph());

  serve::PocketCache cache(4);
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const serve::PocketCache::Entry>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { got[static_cast<size_t>(t)] = cache.lookup(pocket, {}, vox, feat); });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[0].get(), got[static_cast<size_t>(t)].get()) << "thread " << t;
  }
  EXPECT_EQ(cache.stats().misses, 1u) << "the build ran more than once";
}

// ---- pipelined scorer ≡ sequential, bitwise -----------------------------

TEST(PipelinedScorer, BitwiseEqualsSequentialAcrossDepthsAndLanes) {
  Rng rng(81);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  constexpr int kBatches = 6;
  std::vector<std::vector<serve::PoseInput>> batches;
  for (int b = 0; b < kBatches; ++b) batches.push_back(make_poses(5, &pocket, rng));

  // Baseline: plain sequential score() on a fresh replica.
  std::vector<std::vector<float>> want;
  {
    serve::RegressorScorer scorer("fusion", make_fusion(tiny_voxel().channels()), tiny_voxel(),
                                  tiny_graph());
    for (const auto& b : batches) want.push_back(scorer.score(ptrs_of(b)));
  }

  for (int feat_threads : {0, 2}) {
    for (int depth : {1, 2, 4}) {
      serve::RegressorScorer scorer("fusion", make_fusion(tiny_voxel().channels()), tiny_voxel(),
                                    tiny_graph(), feat_threads);
      scorer.set_pipeline_depth(depth);
      serve::ScorerPipeline* pipe = scorer.pipeline();
      ASSERT_NE(pipe, nullptr);
      EXPECT_EQ(pipe->depth(), depth);

      const std::string tag =
          "depth=" + std::to_string(depth) + " lanes=" + std::to_string(feat_threads);
      std::vector<std::vector<float>> got;
      for (const auto& b : batches) {
        if (pipe->in_flight() == static_cast<size_t>(depth)) got.push_back(pipe->collect());
        pipe->submit(ptrs_of(b));
      }
      while (pipe->in_flight() > 0) got.push_back(pipe->collect());
      ASSERT_EQ(got.size(), want.size()) << tag;
      for (int b = 0; b < kBatches; ++b) {
        expect_bitwise(got[static_cast<size_t>(b)], want[static_cast<size_t>(b)],
                       tag + " batch " + std::to_string(b));
      }

      // The drained replica's sequential path is untouched by pipelining.
      expect_bitwise(scorer.score(ptrs_of(batches[0])), want[0], tag + " post-drain score()");
      // Stats account every batch exactly once, at collect time.
      EXPECT_EQ(scorer.phase_stats().batches, static_cast<uint64_t>(kBatches + 1)) << tag;

      // Depth 0 tears the pipeline down.
      scorer.set_pipeline_depth(0);
      EXPECT_EQ(scorer.pipeline(), nullptr) << tag;
    }
  }
}

TEST(PipelinedScorer, CacheHitBitwiseEqualsMissAtBothFeatureSetVersions) {
  Rng rng(82);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  for (int fsv : {1, 2}) {
    const chem::VoxelConfig voxel = tiny_voxel(fsv);
    std::vector<std::vector<serve::PoseInput>> batches;
    for (int b = 0; b < 3; ++b) batches.push_back(make_poses(5, &pocket, rng));

    serve::RegressorScorer plain("fusion", make_fusion(voxel.channels()), voxel, tiny_graph(fsv));
    serve::RegressorScorer cached("fusion", make_fusion(voxel.channels()), voxel, tiny_graph(fsv));
    auto cache = std::make_shared<serve::PocketCache>(4);
    cached.set_pocket_cache(cache);

    for (int b = 0; b < 3; ++b) {
      const auto want = plain.score(ptrs_of(batches[static_cast<size_t>(b)]));
      const auto got = cached.score(ptrs_of(batches[static_cast<size_t>(b)]));
      expect_bitwise(got, want, "fsv=" + std::to_string(fsv) + " batch " + std::to_string(b));
    }
    // One build, then every batch reuses it: one lookup per batch.
    EXPECT_EQ(cache->stats().misses, 1u) << "fsv " << fsv;
    EXPECT_EQ(cache->stats().hits, 2u) << "fsv " << fsv;
  }
}

TEST(PipelinedScorer, ErrorsSurfaceAtCollectAndThePipelineSurvives) {
  Rng rng(83);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto good = make_poses(4, &pocket, rng);
  auto bad = make_poses(2, &pocket, rng);
  bad[1].pocket = nullptr;  // the classic client bug

  serve::RegressorScorer scorer("fusion", make_fusion(tiny_voxel().channels()), tiny_voxel(),
                                tiny_graph());
  const auto want = scorer.score(ptrs_of(good));

  scorer.set_pipeline_depth(2);
  serve::ScorerPipeline* pipe = scorer.pipeline();
  ASSERT_NE(pipe, nullptr);
  EXPECT_THROW(pipe->collect(), std::logic_error);  // nothing in flight

  pipe->submit(ptrs_of(bad));
  pipe->submit(ptrs_of(good));
  // score() must refuse to race in-flight pipelined batches.
  EXPECT_THROW(scorer.score(ptrs_of(good)), std::logic_error);
  EXPECT_THROW(pipe->collect(), std::invalid_argument);  // the null pocket, rethrown
  // The failed slot is released; the next batch is unaffected.
  expect_bitwise(pipe->collect(), want, "batch after a failed one");
  EXPECT_EQ(pipe->in_flight(), 0u);
}

TEST(PipelinedScorer, SteadyStateZeroTensorHeapAllocationsAtDepth2) {
  Rng rng(84);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto poses = make_poses(8, &pocket, rng);
  const auto ptrs = ptrs_of(poses);

  serve::RegressorScorer scorer("fusion", make_fusion(tiny_voxel().channels()), tiny_voxel(),
                                tiny_graph(), /*featurize_threads=*/2);
  auto cache = std::make_shared<serve::PocketCache>(4);
  scorer.set_pocket_cache(cache);
  scorer.set_pipeline_depth(2);
  serve::ScorerPipeline* pipe = scorer.pipeline();
  ASSERT_NE(pipe, nullptr);

  // Warm every ring slot (and the cache entry) so all arenas are sized.
  for (int round = 0; round < 4; ++round) {
    pipe->submit(ptrs);
    pipe->submit(ptrs);
    pipe->collect();
    pipe->collect();
  }

  // Steady state with stages genuinely overlapping: keep the ring full so
  // the stage thread featurizes batch N+1 while collect() forwards N.
  const uint64_t before = core::alloc_count();
  std::vector<float> out;
  pipe->submit(ptrs);
  pipe->submit(ptrs);
  for (int round = 0; round < 6; ++round) {
    out = pipe->collect();
    pipe->submit(ptrs);
  }
  out = pipe->collect();
  out = pipe->collect();
  EXPECT_EQ(core::alloc_count(), before)
      << "steady-state pipelined scoring touched the heap for tensor data";
  ASSERT_EQ(out.size(), ptrs.size());
}

// ---- through the service ------------------------------------------------

TEST(PipelinedService, OrderedStreamBitwiseAcrossDepthWorkersAndCache) {
  Rng rng(85);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  constexpr int kClients = 3;
  std::vector<std::vector<serve::PoseInput>> client_poses;
  for (int c = 0; c < kClients; ++c) client_poses.push_back(make_poses(10, &pocket, rng));

  // `registry_depth` pipelines at the registry level (the service leaves
  // it alone at pipeline_depth == 0); `depth` at the service level.
  struct Config {
    int workers;
    int depth;
    size_t cache_targets;
    int registry_depth;
  };
  const auto run_config = [&](const Config& cc) {
    serve::ModelRegistry reg;
    serve::add_regressor(
        reg, "fusion",
        [] {
          Rng mrng(43);
          auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(tiny_voxel().channels()), mrng);
          auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), mrng);
          models::FusionConfig fcfg;
          fcfg.kind = models::FusionKind::Mid;
          fcfg.model_specific_layers = true;
          fcfg.fusion_nodes = 12;
          return std::make_unique<models::FusionModel>(fcfg, cnn, sg, mrng);
        },
        tiny_voxel(), tiny_graph(), /*featurize_threads=*/0, cc.registry_depth);
    serve::ServiceConfig sc;
    sc.workers = cc.workers;
    sc.poses_per_batch = 4;  // 10-pose requests split 4/4/2
    sc.ordered_stream = true;
    sc.pipeline_depth = cc.depth;
    sc.pocket_cache_targets = cc.cache_targets;
    serve::ScoringService service(reg, sc);
    std::vector<std::vector<float>> scores(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        serve::ScoreRequest req;
        req.scorer = "fusion";
        req.client = "client" + std::to_string(c);
        req.poses = client_poses[static_cast<size_t>(c)];
        scores[static_cast<size_t>(c)] = service.score(std::move(req)).scores;
      });
    }
    for (auto& t : clients) t.join();
    return scores;
  };

  const auto baseline = run_config({1, 0, 0, 0});
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(baseline[static_cast<size_t>(c)].size(), 10u);
  }
  const Config configs[] = {
      {1, 2, 4, 0},  // pipelined + cached, single worker
      {4, 2, 4, 0},  // pipelined + cached, parallel workers
      {2, 4, 0, 0},  // deep pipeline, no cache
      {1, 0, 4, 0},  // cache only, sequential
      {2, 0, 0, 3},  // registry-configured pipeline, service leaves it alone
  };
  for (const Config& cc : configs) {
    const auto got = run_config(cc);
    const std::string tag = "workers=" + std::to_string(cc.workers) +
                            " depth=" + std::to_string(cc.depth) +
                            " cache=" + std::to_string(cc.cache_targets) +
                            " registry_depth=" + std::to_string(cc.registry_depth);
    for (int c = 0; c < kClients; ++c) {
      expect_bitwise(got[static_cast<size_t>(c)], baseline[static_cast<size_t>(c)],
                     tag + " client " + std::to_string(c));
    }
  }
}

TEST(PipelinedService, TypedErrorsAndDrainWithBatchesInFlight) {
  Rng rng(86);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  serve::ModelRegistry reg;
  serve::add_regressor(
      reg, "fusion",
      [] {
        Rng mrng(43);
        auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(tiny_voxel().channels()), mrng);
        auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), mrng);
        models::FusionConfig fcfg;
        fcfg.kind = models::FusionKind::Mid;
        return std::make_unique<models::FusionModel>(fcfg, cnn, sg, mrng);
      },
      tiny_voxel(), tiny_graph());
  serve::ServiceConfig sc;
  sc.workers = 1;
  sc.poses_per_batch = 4;
  sc.ordered_stream = true;
  sc.pipeline_depth = 2;
  sc.pocket_cache_targets = 2;
  serve::ScoringService service(reg, sc);

  // A featurize-stage failure maps to the same typed error as sequential.
  {
    serve::ScoreRequest req;
    req.scorer = "fusion";
    req.poses = make_poses(6, &pocket, rng);
    req.poses[5].pocket = nullptr;
    const serve::ScoreResponse resp = service.score(std::move(req));
    EXPECT_EQ(resp.error, serve::ScoreError::kScorerFailure);
    EXPECT_TRUE(resp.scores.empty());
  }
  // And a good request right after scores normally (the worker's pipeline
  // survived the failed batch).
  {
    serve::ScoreRequest req;
    req.scorer = "fusion";
    req.poses = make_poses(6, &pocket, rng);
    const serve::ScoreResponse resp = service.score(std::move(req));
    EXPECT_EQ(resp.error, serve::ScoreError::kNone);
    EXPECT_EQ(resp.scores.size(), 6u);
  }
  // drain() must wait out in-flight pipelined batches too.
  service.drain();
  service.shutdown();
}

}  // namespace
}  // namespace df
