#include <gtest/gtest.h>

#include <filesystem>

#include "chem/conformer.h"
#include "chem/smiles.h"
#include "data/target.h"
#include "models/sgcnn.h"
#include "screen/job.h"
#include "screen/scale_model.h"
#include "screen/writer.h"
#include "serve/service.h"

namespace df::screen {
namespace {

using core::Rng;

models::SgcnnConfig tiny_sg() {
  models::SgcnnConfig cfg;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 12;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return cfg;
}

ModelFactory sg_factory() {
  return [] {
    Rng rng(77);  // same seed -> identical weights on every replica
    return std::make_unique<models::Sgcnn>(tiny_sg(), rng);
  };
}

/// Ordered-stream service with the tiny SG-CNN registered as "sg" — the
/// shared scoring backend every job test runs through.
serve::ScoringService make_sg_service(int workers = 4) {
  serve::ModelRegistry reg;
  chem::VoxelConfig voxel;
  voxel.grid_dim = 8;
  serve::add_regressor(reg, "sg", sg_factory(), voxel);
  serve::ServiceConfig sc;
  sc.workers = workers;
  sc.ordered_stream = true;
  return serve::ScoringService(reg, sc);
}

std::vector<PoseWorkItem> make_items(int n, const std::vector<chem::Atom>* pocket, Rng& rng) {
  std::vector<PoseWorkItem> items;
  for (int i = 0; i < n; ++i) {
    chem::Molecule lig = chem::parse_smiles("CC(N)CC(=O)O");
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    PoseWorkItem item;
    item.compound_id = i / 2;
    item.target_id = 0;
    item.pose_id = i % 2;
    item.ligand = std::move(lig);
    item.pocket = pocket;
    items.push_back(std::move(item));
  }
  return items;
}

TEST(Cluster, FailureRatesMatchPaper) {
  EXPECT_DOUBLE_EQ(job_failure_probability(1), 0.02);
  EXPECT_DOUBLE_EQ(job_failure_probability(2), 0.02);
  EXPECT_DOUBLE_EQ(job_failure_probability(4), 0.03);
  EXPECT_DOUBLE_EQ(job_failure_probability(8), 0.20);
}

TEST(Cluster, GpuMemoryModel) {
  NodeSpec node;  // 16 GB V100
  // Paper: 1.5 GB model + 56-pose batches fit.
  EXPECT_TRUE(batch_fits_gpu(1.5, 0.25, 56, node));
  EXPECT_FALSE(batch_fits_gpu(1.5, 0.25, 100, node));
}

TEST(Job, ScoresAllPosesAcrossRanks) {
  Rng rng(1);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto items = make_items(23, &pocket, rng);  // deliberately not divisible
  serve::ScoringService service = make_sg_service();
  JobConfig jc;
  jc.nodes = 2;
  jc.gpus_per_node = 2;
  FusionScoringJob job(jc);
  const JobReport r = job.run(items, service, "sg");
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.poses_scored, 23);
  EXPECT_EQ(r.predictions.size(), 23u);
  for (float p : r.predictions) EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(r.poses_per_second, 0.0);
}

TEST(Job, ResultsPreserveChunkOrder) {
  Rng rng(2);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto items = make_items(12, &pocket, rng);
  serve::ScoringService service = make_sg_service();
  JobConfig jc;
  jc.nodes = 1;
  jc.gpus_per_node = 3;
  const JobReport r = FusionScoringJob(jc).run(items, service, "sg");
  ASSERT_EQ(r.compound_ids.size(), 12u);
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(r.compound_ids[i], items[i].compound_id);
    EXPECT_EQ(r.pose_ids[i], items[i].pose_id);
  }
}

TEST(Job, IdenticalReplicasGiveConsistentScores) {
  // Same item placed at the start and end of the list lands on different
  // ranks (and so in different service requests, possibly scored by
  // different replicas); both must produce the same prediction.
  Rng rng(3);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  auto items = make_items(10, &pocket, rng);
  items.back() = items.front();
  items.back().pose_id = 9;
  serve::ScoringService service = make_sg_service();
  JobConfig jc;
  jc.nodes = 2;
  jc.gpus_per_node = 1;
  const JobReport r = FusionScoringJob(jc).run(items, service, "sg");
  EXPECT_NEAR(r.predictions.front(), r.predictions.back(), 1e-5f);
}

TEST(Job, FailureProducesNoOutput) {
  Rng rng(4);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto items = make_items(16, &pocket, rng);
  serve::ScoringService service = make_sg_service();
  JobConfig jc;
  jc.nodes = 8;  // 20% failure rate
  jc.gpus_per_node = 1;
  jc.inject_failures = true;
  // Scan seeds until one fails (p=0.2 -> should happen fast).
  bool saw_failure = false;
  for (uint64_t seed = 0; seed < 40 && !saw_failure; ++seed) {
    jc.seed = seed;
    const JobReport r = FusionScoringJob(jc).run(items, service, "sg");
    if (r.failed) {
      saw_failure = true;
      EXPECT_TRUE(r.predictions.empty());  // nothing written on failure
      EXPECT_GE(r.failed_rank, 0);
    }
  }
  EXPECT_TRUE(saw_failure);
}

TEST(Job, UnknownScorerThrowsAtStartup) {
  Rng rng(5);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto items = make_items(4, &pocket, rng);
  serve::ScoringService service = make_sg_service(1);
  JobConfig jc;
  jc.nodes = 1;
  jc.gpus_per_node = 1;
  EXPECT_THROW(FusionScoringJob(jc).run(items, service, "no_such_model"), std::out_of_range);
}

TEST(Writer, ShardedRoundTrip) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "df_shard_test").string();
  std::vector<int64_t> c{1, 2, 3, 4, 5}, t{0, 0, 1, 1, 2}, p{0, 1, 0, 1, 0};
  std::vector<float> y{1.1f, 2.2f, 3.3f, 4.4f, 5.5f};
  const auto files = write_sharded_results(prefix, 3, c, t, p, y);
  EXPECT_EQ(files.size(), 3u);
  const GatheredResults g = read_sharded_results(files);
  EXPECT_EQ(g.predictions.size(), 5u);
  // Round-robin sharding permutes rows; compare as multisets keyed by id.
  float sum = 0;
  for (float v : g.predictions) sum += v;
  EXPECT_NEAR(sum, 16.5f, 1e-4f);
  for (const auto& f : files) std::filesystem::remove(f);
}

TEST(ScaleModel, PaperDefaultsReproduceTable7SingleJob) {
  ThroughputModel model;  // paper-calibrated defaults
  const JobTimeBreakdown t = model.job_time(2'000'000, 4, 56);
  // Table 7: 20 min startup / 280 min eval / 6.5 min output, 108 poses/s.
  EXPECT_NEAR(t.startup_minutes, 20.0, 2.5);
  EXPECT_NEAR(t.eval_minutes, 280.0, 40.0);
  EXPECT_NEAR(t.output_minutes, 6.5, 0.1);
  EXPECT_NEAR(t.poses_per_second, 108.0, 15.0);
}

TEST(ScaleModel, PeakThroughputNear125JobScale) {
  ThroughputModel model;
  const PeakThroughput peak = model.peak(125, 2'000'000, 4, 56, 10.0);
  // Table 7 peak: 13,594 poses/s, 48.6M poses/h, 4.86M compounds/h.
  EXPECT_NEAR(peak.poses_per_second, 13594.0, 2000.0);
  EXPECT_NEAR(peak.compounds_per_hour, 4.86e6, 8e5);
}

TEST(ScaleModel, BatchSizeEffectIsSmallButReal) {
  // Fig 4: batch 56 saves ~10 minutes over batch 12 on a 2M-pose job.
  ThroughputModel model;
  const double t12 = model.job_time(2'000'000, 4, 12).total_minutes();
  const double t56 = model.job_time(2'000'000, 4, 56).total_minutes();
  EXPECT_GT(t12, t56);
  EXPECT_NEAR(t12 - t56, 10.0, 6.0);
}

TEST(ScaleModel, StrongScalingIsSubLinear) {
  // Fig 4: doubling nodes less than halves total time (startup + output
  // don't scale).
  ThroughputModel model;
  const double t1 = model.job_time(2'000'000, 1, 56).total_minutes();
  const double t2 = model.job_time(2'000'000, 2, 56).total_minutes();
  const double t8 = model.job_time(2'000'000, 8, 56).total_minutes();
  EXPECT_GT(t2, t1 / 2.0);
  EXPECT_GT(t8, t1 / 8.0);
  EXPECT_LT(t8, t2);
}

TEST(ScaleModel, FailureOverheadGrowsWithNodes) {
  ThroughputModel model;
  const double e4 = model.expected_minutes_with_failures(2'000'000, 4, 56) /
                    model.job_time(2'000'000, 4, 56).total_minutes();
  const double e8 = model.expected_minutes_with_failures(2'000'000, 8, 56) /
                    model.job_time(2'000'000, 8, 56).total_minutes();
  EXPECT_GT(e8, e4);  // 20% failure rate at 8 nodes bites harder
}

TEST(ScaleModel, CalibrationOverridesDefaults) {
  ThroughputModel model;
  model.calibrate(100.0);
  EXPECT_DOUBLE_EQ(model.config().per_rank_poses_per_second, 100.0);
}

}  // namespace
}  // namespace df::screen
