#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/gated_graph_conv.h"
#include "graph/gather.h"
#include "graph/graph.h"
#include "graph/gru_cell.h"

namespace df::graph {
namespace {

using core::Rng;
using core::Tensor;

TEST(EdgeList, UndirectedAddsBothDirections) {
  EdgeList e;
  e.add_undirected(1, 2);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.src[0], 1);
  EXPECT_EQ(e.dst[0], 2);
  EXPECT_EQ(e.src[1], 2);
  EXPECT_EQ(e.dst[1], 1);
}

TEST(GRUCell, OutputShapeMatchesState) {
  Rng rng(1);
  GRUCell gru(8, rng);
  Tensor x = Tensor::randn({5, 8}, rng);
  Tensor h = Tensor::randn({5, 8}, rng);
  Tensor h2 = gru.forward(x, h, false);
  EXPECT_EQ(h2.shape(), h.shape());
}

TEST(GRUCell, InterpolatesBetweenStateAndCandidate) {
  // h' = (1-z) h + z c is a convex combination, so each output element lies
  // within [min(h,c)-eps, max(h,c)+eps] where c in (-1,1) from tanh.
  Rng rng(2);
  GRUCell gru(4, rng);
  Tensor x = Tensor::randn({3, 4}, rng);
  Tensor h = Tensor::randn({3, 4}, rng, 0.5f);
  Tensor h2 = gru.forward(x, h, false);
  for (int64_t i = 0; i < h2.numel(); ++i) {
    EXPECT_LE(h2[i], std::max(h[i], 1.0f) + 1e-5f);
    EXPECT_GE(h2[i], std::min(h[i], -1.0f) - 1e-5f);
  }
}

TEST(GRUCell, FrameStackDiscipline) {
  Rng rng(3);
  GRUCell gru(4, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor h = Tensor::randn({2, 4}, rng);
  EXPECT_FALSE(gru.has_frames());
  Tensor h1 = gru.forward(x, h, true);
  Tensor h2 = gru.forward(x, h1, true);
  EXPECT_TRUE(gru.has_frames());
  gru.backward(Tensor::ones({2, 4}));
  gru.backward(Tensor::ones({2, 4}));
  EXPECT_FALSE(gru.has_frames());
  EXPECT_THROW(gru.backward(Tensor::ones({2, 4})), std::runtime_error);
}

TEST(GRUCell, ParameterCount) {
  Rng rng(4);
  GRUCell gru(8, rng);
  std::vector<nn::Parameter*> p;
  gru.collect_parameters(p);
  EXPECT_EQ(p.size(), 9u);  // 3 gates x (W, U, b)
}

TEST(GatedGraphConv, IsolatedNodesKeepZeroMessages) {
  // With no edges, message is zero everywhere; states still evolve through
  // the GRU but identically for identical inputs.
  Rng rng(5);
  GatedGraphConv ggc(6, 3, rng);
  EdgeList empty;
  Tensor h0 = Tensor::randn({4, 6}, rng);
  // duplicate rows 0 and 1
  for (int64_t j = 0; j < 6; ++j) h0.at(1, j) = h0.at(0, j);
  Tensor h = ggc.forward(h0, empty, false);
  for (int64_t j = 0; j < 6; ++j) EXPECT_FLOAT_EQ(h.at(0, j), h.at(1, j));
}

TEST(GatedGraphConv, MessagePassingPropagatesInformation) {
  // A chain 0-1-2: after 2 steps, node 2's state must depend on node 0's
  // input. Verify by perturbing node 0 and observing node 2 change.
  Rng rng(6);
  GatedGraphConv ggc(6, 2, rng);
  EdgeList chain;
  chain.add_undirected(0, 1);
  chain.add_undirected(1, 2);
  Tensor h0 = Tensor::randn({3, 6}, rng);
  Tensor out1 = ggc.forward(h0, chain, false);
  h0.at(0, 0) += 1.0f;
  Tensor out2 = ggc.forward(h0, chain, false);
  float delta = 0.0f;
  for (int64_t j = 0; j < 6; ++j) delta += std::abs(out2.at(2, j) - out1.at(2, j));
  EXPECT_GT(delta, 1e-6f);
}

TEST(GatedGraphConv, OneStepLocality) {
  // With K=1, node 2 (two hops from node 0) cannot see node 0.
  Rng rng(7);
  GatedGraphConv ggc(6, 1, rng);
  EdgeList chain;
  chain.add_undirected(0, 1);
  chain.add_undirected(1, 2);
  Tensor h0 = Tensor::randn({3, 6}, rng);
  Tensor out1 = ggc.forward(h0, chain, false);
  h0.at(0, 0) += 1.0f;
  Tensor out2 = ggc.forward(h0, chain, false);
  for (int64_t j = 0; j < 6; ++j) EXPECT_FLOAT_EQ(out2.at(2, j), out1.at(2, j));
}

TEST(Gather, OutputWidth) {
  Rng rng(8);
  Gather gather(6, 4, 10, rng);
  Tensor h = Tensor::randn({5, 6}, rng);
  Tensor x = Tensor::randn({5, 4}, rng);
  Tensor per_node = gather.forward_nodes(h, x, false);
  EXPECT_EQ(per_node.shape(), (std::vector<int64_t>{5, 10}));
  Tensor pooled = gather.forward_sum(h, x, 3, false);
  EXPECT_EQ(pooled.shape(), (std::vector<int64_t>{1, 10}));
}

TEST(Gather, SumOnlyCoversLigandNodes) {
  Rng rng(9);
  Gather gather(4, 2, 6, rng);
  Tensor h = Tensor::randn({4, 4}, rng);
  Tensor x = Tensor::randn({4, 2}, rng);
  Tensor per_node = gather.forward_nodes(h, x, false);
  Tensor pooled = gather.forward_sum(h, x, 2, false);
  for (int64_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(pooled.at(0, j), per_node.at(0, j) + per_node.at(1, j), 1e-5f);
  }
}

TEST(Gather, NodeCountMismatchThrows) {
  Rng rng(10);
  Gather gather(4, 2, 6, rng);
  Tensor h = Tensor::randn({4, 4}, rng);
  Tensor x = Tensor::randn({3, 2}, rng);
  EXPECT_THROW(gather.forward_nodes(h, x, false), std::invalid_argument);
}

}  // namespace
}  // namespace df::graph
