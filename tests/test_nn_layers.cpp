#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/activations.h"
#include "nn/conv3d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/losses.h"
#include "nn/norm.h"
#include "nn/residual.h"
#include "nn/sequential.h"

namespace df::nn {
namespace {

using core::Rng;
using core::Tensor;

TEST(Dense, OutputShapeAndBias) {
  Rng rng(1);
  Dense d(4, 3, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y = d.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 3}));
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(1);
  Dense d(4, 3, rng);
  Tensor x({2, 5});
  EXPECT_THROW(d.forward(x), std::invalid_argument);
}

TEST(Dense, LinearInWeights) {
  // With zero weights and bias, output must be zero.
  Rng rng(1);
  Dense d(3, 2, rng);
  d.weight().value.zero();
  d.bias().value.zero();
  Tensor y = d.forward(Tensor::randn({4, 3}, rng));
  EXPECT_FLOAT_EQ(y.norm(), 0.0f);
}

TEST(Activations, ReluClampsNegatives) {
  ReLU relu;
  Tensor y = relu.forward(Tensor::from({-1.0f, 0.0f, 2.0f}));
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(Activations, LeakyReluSlope) {
  LeakyReLU lrelu(0.1f);
  Tensor y = lrelu.forward(Tensor::from({-2.0f, 3.0f}));
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(Activations, SeluFixedPointProperties) {
  // SELU(0) = 0; positive branch is scale*x; negative saturates to
  // -scale*alpha.
  SELU selu;
  Tensor y = selu.forward(Tensor::from({0.0f, 1.0f, -30.0f}));
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[1], SELU::kScale, 1e-5f);
  EXPECT_NEAR(y[2], -SELU::kScale * SELU::kAlpha, 1e-3f);
}

TEST(Activations, FactoryNames) {
  EXPECT_STREQ(activation_name(Activation::kReLU), "ReLU");
  EXPECT_STREQ(activation_name(Activation::kSELU), "SELU");
  auto m = make_activation(Activation::kLeakyReLU);
  ASSERT_NE(m, nullptr);
}

TEST(Conv3d, OutputGeometry) {
  Rng rng(2);
  Conv3d conv(2, 4, 3, rng, /*stride=*/1, /*padding=*/1);
  Tensor x = Tensor::randn({1, 2, 6, 6, 6}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{1, 4, 6, 6, 6}));
}

TEST(Conv3d, StrideTwoHalvesGrid) {
  Rng rng(2);
  Conv3d conv(1, 2, 5, rng, 2, 2);
  Tensor x = Tensor::randn({1, 1, 12, 12, 12}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(2), 6);
}

TEST(Conv3d, IdentityKernelReproducesInput) {
  Rng rng(2);
  Conv3d conv(1, 1, 1, rng, 1, 0);
  conv.parameters()[0]->value.fill(1.0f);  // weight
  conv.parameters()[1]->value.fill(0.0f);  // bias
  Tensor x = Tensor::randn({1, 1, 4, 4, 4}, rng);
  Tensor y = conv.forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(MaxPool3d, SelectsMaxima) {
  MaxPool3d pool(2, 2);
  Tensor x({1, 1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
}

TEST(MaxPool3d, BackwardRoutesToArgmax) {
  MaxPool3d pool(2, 2);
  Tensor x({1, 1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  pool.forward(x);
  Tensor g({1, 1, 1, 1, 1});
  g[0] = 5.0f;
  Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[7], 5.0f);
  EXPECT_FLOAT_EQ(gx.sum(), 5.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 2, 2, 2}, rng);
  Tensor y = f.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 24}));
  Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(BatchNorm1d, NormalizesTrainingBatch) {
  Rng rng(4);
  BatchNorm1d bn(3);
  bn.set_training(true);
  Tensor x = Tensor::randn({64, 3}, rng, 5.0f);
  x += 10.0f;
  Tensor y = bn.forward(x);
  // Per-feature mean ~0, var ~1.
  for (int64_t j = 0; j < 3; ++j) {
    double mean = 0, var = 0;
    for (int64_t i = 0; i < 64; ++i) mean += y.at(i, j);
    mean /= 64;
    for (int64_t i = 0; i < 64; ++i) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm1d, EvalUsesRunningStats) {
  Rng rng(4);
  BatchNorm1d bn(2);
  bn.set_training(true);
  for (int i = 0; i < 50; ++i) {
    Tensor x = Tensor::randn({32, 2}, rng, 2.0f);
    x += 3.0f;
    bn.forward(x);
  }
  bn.set_training(false);
  Tensor probe({1, 2});
  probe.at(0, 0) = 3.0f;  // at the running mean -> output ~0
  probe.at(0, 1) = 3.0f;
  Tensor y = bn.forward(probe);
  EXPECT_NEAR(y[0], 0.0f, 0.15f);
  EXPECT_NEAR(y[1], 0.0f, 0.15f);
}

TEST(BatchNorm3d, PerChannelNormalization) {
  Rng rng(5);
  BatchNorm3d bn(2);
  bn.set_training(true);
  Tensor x = Tensor::randn({4, 2, 3, 3, 3}, rng, 3.0f);
  Tensor y = bn.forward(x);
  // channel 0 statistics
  double mean = 0;
  const int64_t spatial = 27;
  for (int64_t b = 0; b < 4; ++b)
    for (int64_t s = 0; s < spatial; ++s) mean += y[(b * 2 + 0) * spatial + s];
  mean /= 4 * spatial;
  EXPECT_NEAR(mean, 0.0, 1e-4);
}

TEST(Dropout, EvalIsIdentity) {
  Rng rng(6);
  Dropout d(0.5f, rng);
  d.set_training(false);
  Tensor x = Tensor::randn({100}, rng);
  Tensor y = d.forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingPreservesExpectation) {
  Rng rng(6);
  Dropout d(0.3f, rng);
  d.set_training(true);
  Tensor x({20000}, 1.0f);
  Tensor y = d.forward(x);
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);  // inverted dropout keeps E[y]=x
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  Rng rng(6);
  Dropout d(0.0f, rng);
  d.set_training(true);
  Tensor x = Tensor::randn({50}, rng);
  Tensor y = d.forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Residual, AddsIdentity) {
  Rng rng(7);
  auto inner = std::make_unique<Sequential>();
  inner->emplace<Dense>(3, 3, rng);
  Residual res(std::move(inner));
  Tensor x = Tensor::randn({2, 3}, rng);
  Tensor y = res.forward(x);
  // y - inner(x) == x  =>  check via zeroed inner weights
  auto inner2 = std::make_unique<Sequential>();
  auto dense = std::make_unique<Dense>(3, 3, rng);
  dense->weight().value.zero();
  dense->bias().value.zero();
  inner2->add(std::move(dense));
  Residual res0(std::move(inner2));
  Tensor y0 = res0.forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y0[i], x[i]);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Losses, MseKnownValue) {
  Tensor p = Tensor::from({1, 2});
  Tensor t = Tensor::from({0, 4});
  Tensor g;
  const float l = mse_loss(p, t, &g);
  EXPECT_FLOAT_EQ(l, (1.0f + 4.0f) / 2.0f);
  EXPECT_FLOAT_EQ(g[0], 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(g[1], 2.0f * -2.0f / 2.0f);
}

TEST(Losses, MaeKnownValue) {
  EXPECT_FLOAT_EQ(mae_loss(Tensor::from({1, -1}), Tensor::from({0, 0})), 1.0f);
}

TEST(Losses, HuberMatchesMseInCore) {
  Tensor p = Tensor::from({0.1f});
  Tensor t = Tensor::from({0.0f});
  const float h = huber_loss(p, t, 1.0f);
  EXPECT_NEAR(h, 0.5f * 0.01f, 1e-6f);
}

TEST(Losses, HuberLinearTail) {
  Tensor p = Tensor::from({10.0f});
  Tensor t = Tensor::from({0.0f});
  Tensor g;
  huber_loss(p, t, 1.0f, &g);
  EXPECT_FLOAT_EQ(g[0], 1.0f);  // clipped gradient
}

TEST(Sequential, ChainsAndCollectsParams) {
  Rng rng(8);
  Sequential seq;
  seq.emplace<Dense>(4, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2 weights + 2 biases
  Tensor y = seq.forward(Tensor::randn({3, 4}, rng));
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 2}));
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(9);
  Dense d(3, 3, rng);
  d.set_training(true);
  Tensor x = Tensor::randn({2, 3}, rng);
  d.forward(x);
  d.backward(Tensor::ones({2, 3}));
  EXPECT_GT(d.weight().grad.norm(), 0.0f);
  d.zero_grad();
  EXPECT_FLOAT_EQ(d.weight().grad.norm(), 0.0f);
}

TEST(Module, NumParametersCounts) {
  Rng rng(10);
  Dense d(10, 5, rng);
  EXPECT_EQ(d.num_parameters(), 10 * 5 + 5);
}

}  // namespace
}  // namespace df::nn
