#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/rng.h"
#include "core/threadpool.h"

namespace df::core {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.randint(0, 1000), b.randint(0, 1000));
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, RandintInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.randint(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(4));
}

TEST(Rng, BernoulliRate) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkDiverges) {
  Rng a(5);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.randint(0, 1 << 20) == b.randint(0, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace df::core
