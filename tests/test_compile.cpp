// Ahead-of-time model compiler pins:
//   * prepacked GEMM operands are bitwise identical to per-call packing at
//     every blocking boundary (MR/NR/KC/MC/NC), on the skinny-RHS fast path,
//     for both operand overloads, with and without fused epilogues,
//   * BatchNorm folding matches the unfused eval stack within fp tolerance,
//     and compilation of a BN-free model is bitwise exact,
//   * the compiled-artifact container round-trips golden sections, rejects
//     version mismatches and CRC corruption with typed errors and no
//     partial load,
//   * for all four model families, a RegressorScorer replica restored from
//     a compiled artifact scores bitwise identically to an h5-checkpoint-
//     loaded replica, with zero tensor heap allocations and zero arena
//     growth from its very first batch (pre-reserved workspace budgets).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "chem/conformer.h"
#include "chem/voxelizer.h"
#include "compile/model_compiler.h"
#include "core/gemm.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "data/dataset.h"
#include "data/target.h"
#include "io/model_artifact.h"
#include "models/checkpoint.h"
#include "models/cnn3d.h"
#include "models/fusion.h"
#include "models/sgcnn.h"
#include "serve/registry.h"
#include "serve/scorer.h"

namespace df {
namespace {

using core::Rng;
using core::Tensor;

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- fixtures (mirror tests/test_scoring_service.cpp) --------------------

chem::VoxelConfig tiny_voxel() {
  chem::VoxelConfig cfg;
  cfg.grid_dim = 8;
  return cfg;
}

models::Cnn3dConfig tiny_cnn_cfg() {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = 8;
  cfg.conv_filters1 = 4;
  cfg.conv_filters2 = 8;
  cfg.dense_nodes = 16;
  return cfg;
}

models::SgcnnConfig tiny_sg_cfg() {
  models::SgcnnConfig cfg;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 16;
  return cfg;
}

std::vector<serve::PoseInput> make_poses(int n, const std::vector<chem::Atom>* pocket, Rng& rng) {
  std::vector<serve::PoseInput> poses;
  for (int i = 0; i < n; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = pocket;
    poses.push_back(std::move(p));
  }
  return poses;
}

std::vector<std::pair<std::string, models::RegressorFactory>> family_factories() {
  return {
      {"cnn3d",
       [] {
         Rng rng(41);
         return std::make_unique<models::Cnn3d>(tiny_cnn_cfg(), rng);
       }},
      {"sgcnn",
       [] {
         Rng rng(42);
         return std::make_unique<models::Sgcnn>(tiny_sg_cfg(), rng);
       }},
      {"fusion",
       [] {
         Rng rng(43);
         auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(), rng);
         auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
         models::FusionConfig fcfg;
         fcfg.kind = models::FusionKind::Mid;
         fcfg.model_specific_layers = true;
         fcfg.fusion_nodes = 12;
         return std::make_unique<models::FusionModel>(fcfg, cnn, sg, rng);
       }},
      {"late_fusion",
       [] {
         Rng rng(44);
         auto cnn = std::make_shared<models::Cnn3d>(tiny_cnn_cfg(), rng);
         auto sg = std::make_shared<models::Sgcnn>(tiny_sg_cfg(), rng);
         return std::make_unique<models::LateFusion>(std::move(cnn), std::move(sg));
       }},
  };
}

std::vector<float> random_buf(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

// ---- prepacked GEMM: bitwise equality at every blocking boundary ---------

void check_prepacked_b(int64_t m, int64_t n, int64_t k, bool with_epilogue, Rng& rng) {
  const std::vector<float> A = random_buf(m * k, rng);
  const std::vector<float> B = random_buf(k * n, rng);
  const std::vector<float> bias = random_buf(n, rng);
  core::Epilogue ep;
  ep.act = core::EpilogueAct::kReLU;
  ep.bias_col = bias.data();
  const core::Epilogue* epp = with_epilogue ? &ep : nullptr;

  std::vector<float> C_ref(static_cast<size_t>(m * n), 0.0f);
  core::sgemm(false, false, m, n, k, A.data(), k, B.data(), n, C_ref.data(), n, false, epp);

  std::vector<float> image(static_cast<size_t>(core::packed_b_floats(k, n)));
  core::pack_b_full(false, k, n, B.data(), n, image.data());
  core::PrepackedB pb{k, n, image.data()};
  std::vector<float> C(static_cast<size_t>(m * n), 0.0f);
  core::sgemm_prepacked(m, A.data(), k, pb, C.data(), n, false, epp);

  ASSERT_EQ(std::memcmp(C.data(), C_ref.data(), C.size() * sizeof(float)), 0)
      << "prepacked-B mismatch m=" << m << " n=" << n << " k=" << k
      << " epilogue=" << with_epilogue;
}

void check_prepacked_a(int64_t m, int64_t n, int64_t k, bool with_epilogue, Rng& rng) {
  const std::vector<float> A = random_buf(m * k, rng);
  const std::vector<float> B = random_buf(k * n, rng);
  const std::vector<float> bias = random_buf(m, rng);
  core::Epilogue ep;
  ep.act = core::EpilogueAct::kLeakyReLU;
  ep.bias_row = bias.data();
  ep.leaky_slope = 0.05f;
  const core::Epilogue* epp = with_epilogue ? &ep : nullptr;

  std::vector<float> C_ref(static_cast<size_t>(m * n), 0.0f);
  core::sgemm(false, false, m, n, k, A.data(), k, B.data(), n, C_ref.data(), n, false, epp);

  std::vector<float> panels(static_cast<size_t>(core::packed_a_floats(m, k)));
  core::pack_a_full(false, m, k, A.data(), k, panels.data());
  core::PrepackedA pa{m, k, panels.data(), A.data()};
  std::vector<float> C(static_cast<size_t>(m * n), 0.0f);
  core::sgemm_prepacked(pa, n, B.data(), n, C.data(), n, false, epp);

  ASSERT_EQ(std::memcmp(C.data(), C_ref.data(), C.size() * sizeof(float)), 0)
      << "prepacked-A mismatch m=" << m << " n=" << n << " k=" << k
      << " epilogue=" << with_epilogue;
}

TEST(PrepackedGemm, BitwiseMatchesPerCallPackingAtBlockingBoundaries) {
  Rng rng(7);
  // n spans the NR=32 micro-panel, the skinny-RHS cutoff (96) and the
  // NC=1024 block boundary; k spans the KC=192 panel; m spans MR=6 and
  // MC=96. Skinny dispatch triggers when n <= 96 (and k <= 192 or m <= 64),
  // so the sweep exercises both the streamed skinny image and the blocked
  // panel path of one prepacked B image.
  for (int64_t n : {1, 31, 32, 33, 96, 97, 1025}) {
    for (int64_t k : {1, 191, 193}) {
      for (int64_t m : {1, 5, 7, 97}) {
        check_prepacked_b(m, n, k, false, rng);
      }
      check_prepacked_b(6, n, k, true, rng);
    }
  }
  // Deep-k skinny: k > KC with small m stays on the skinny path and walks
  // the per-KC-panel accumulate.
  check_prepacked_b(8, 16, 200, false, rng);
  check_prepacked_b(8, 16, 200, true, rng);
}

TEST(PrepackedGemm, PrepackedAMatchesAcrossBoundariesIncludingSkinnyStream) {
  Rng rng(8);
  for (int64_t m : {1, 5, 6, 7, 95, 97}) {
    for (int64_t k : {1, 191, 192, 193}) {
      check_prepacked_a(m, 97, k, false, rng);  // past the skinny cutoff: blocked path
      check_prepacked_a(m, 33, k, false, rng);  // skinny for m <= 64, blocked above
      check_prepacked_a(m, 8, k, true, rng);    // skinny path streams A.raw
    }
  }
}

TEST(PrepackedGemm, AccumulateAndNullViewsRejected) {
  Rng rng(9);
  const int64_t m = 7, n = 40, k = 65;
  const std::vector<float> A = random_buf(m * k, rng);
  const std::vector<float> B = random_buf(k * n, rng);
  std::vector<float> C_ref = random_buf(m * n, rng);
  std::vector<float> C = C_ref;

  std::vector<float> image(static_cast<size_t>(core::packed_b_floats(k, n)));
  core::pack_b_full(false, k, n, B.data(), n, image.data());
  core::PrepackedB pb{k, n, image.data()};
  core::sgemm(false, false, m, n, k, A.data(), k, B.data(), n, C_ref.data(), n, true);
  core::sgemm_prepacked(m, A.data(), k, pb, C.data(), n, true);
  ASSERT_EQ(std::memcmp(C.data(), C_ref.data(), C.size() * sizeof(float)), 0);

  core::PrepackedB bad{k, n, nullptr};
  EXPECT_THROW(core::sgemm_prepacked(m, A.data(), k, bad, C.data(), n), std::invalid_argument);
  core::PrepackedA bad_a{m, k, nullptr, A.data()};
  EXPECT_THROW(core::sgemm_prepacked(bad_a, n, B.data(), n, C.data(), n), std::invalid_argument);
}

// ---- BatchNorm folding ---------------------------------------------------

data::Sample voxel_sample(const models::Cnn3dConfig& cfg, Rng& rng, float label) {
  data::Sample s;
  s.voxel = Tensor::randn({1, cfg.in_channels, cfg.grid_dim, cfg.grid_dim, cfg.grid_dim}, rng);
  s.label = label;
  return s;
}

TEST(ModelCompiler, FoldedBatchNormMatchesUnfusedEvalWithinTolerance) {
  models::Cnn3dConfig cfg = tiny_cnn_cfg();
  cfg.batch_norm = true;

  // Two bit-identical models: same init seed, same training history (a few
  // training forwards move the BN running stats off their init values).
  auto build = [&cfg] {
    Rng rng(51);
    auto m = std::make_unique<models::Cnn3d>(cfg, rng);
    Rng data_rng(52);
    for (int i = 0; i < 5; ++i) {
      data::Sample s = voxel_sample(cfg, data_rng, 5.0f);
      m->forward_train(s);
      m->backward(0.1f);
    }
    m->set_training(false);
    return m;
  };
  auto reference = build();
  auto compiled = build();
  const compile::CompileReport rep = compile::ModelCompiler().compile(*compiled);
  EXPECT_EQ(rep.folded_batch_norms, 2);  // one BN3d per conv stage
  EXPECT_GT(rep.stripped_dropouts, 0);
  EXPECT_GT(rep.prepacked_conv, 0);
  EXPECT_GT(rep.prepacked_dense, 0);

  Rng eval_rng(53);
  for (int i = 0; i < 4; ++i) {
    data::Sample s = voxel_sample(cfg, eval_rng, 0.0f);
    const float want = reference->predict(s);
    const float got = compiled->predict(s);
    // Folding reassociates one multiply per weight; the documented bound.
    EXPECT_NEAR(got, want, 1e-4f) << "sample " << i;
  }
}

TEST(ModelCompiler, CompilingBatchNormFreeModelIsBitwiseExact) {
  for (auto& [name, factory] : family_factories()) {
    auto reference = factory();
    auto compiled = factory();
    reference->set_training(false);
    compile::ModelCompiler().compile(*compiled);

    Rng rng(61);
    const models::Cnn3dConfig cfg = tiny_cnn_cfg();
    if (name == "cnn3d") {
      for (int i = 0; i < 3; ++i) {
        data::Sample s = voxel_sample(cfg, rng, 0.0f);
        EXPECT_EQ(compiled->predict(s), reference->predict(s)) << name << " sample " << i;
      }
    }
    // The full four-family bitwise pin (real featurization, batched scorer
    // path) lives in CompiledArtifact.AllFamiliesScoreBitwiseEqualToH5Path.
  }
}

// ---- artifact container --------------------------------------------------

TEST(CompiledArtifact, GoldenRoundTrip) {
  const std::string path = tmp_path("df_artifact_golden.dfca");
  const std::vector<float> f = {1.5f, -2.25f, 0.0f, 3.75f, 42.0f, -0.5f};
  const std::vector<int64_t> i64 = {7, -9, 1};

  io::ArtifactWriter w;
  w.add_floats("weights/w0", {2, 3}, f.data());
  w.add_ints("meta/dims", {3}, i64.data());
  w.add_scalar("meta/version_tag", 12345);
  w.save(path);

  auto r = io::ArtifactReader::open(path);
  ASSERT_TRUE(r->has("weights/w0"));
  ASSERT_TRUE(r->has("meta/dims"));
  EXPECT_FALSE(r->has("missing"));
  EXPECT_EQ(r->scalar("meta/version_tag"), 12345);

  const io::ArtifactSection& ws = r->section("weights/w0");
  EXPECT_EQ(ws.dims, (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(ws.byte_offset % 64, 0u);  // mmap-alignment contract
  EXPECT_EQ(std::memcmp(r->floats("weights/w0"), f.data(), f.size() * sizeof(float)), 0);
  const io::ArtifactSection& is = r->section("meta/dims");
  EXPECT_EQ(is.byte_offset % 64, 0u);
  EXPECT_EQ(std::memcmp(r->ints("meta/dims"), i64.data(), i64.size() * sizeof(int64_t)), 0);

  // Typed dtype mismatches.
  EXPECT_THROW(r->ints("weights/w0"), io::H5LiteError);
  EXPECT_THROW(r->floats("meta/dims"), io::H5LiteError);
  EXPECT_THROW(r->section("missing"), io::H5LiteError);
  std::filesystem::remove(path);
}

void corrupt_byte(const std::string& path, int64_t offset, char xor_mask) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  if (offset < 0) {
    f.seekg(0, std::ios::end);
    offset = static_cast<int64_t>(f.tellg()) + offset;
  }
  f.seekg(offset);
  char c;
  f.read(&c, 1);
  c = static_cast<char>(c ^ xor_mask);
  f.seekp(offset);
  f.write(&c, 1);
}

TEST(CompiledArtifact, VersionMismatchAndCorruptionRejectedTyped) {
  const std::string path = tmp_path("df_artifact_damage.dfca");
  const std::vector<float> f = {1.0f, 2.0f, 3.0f, 4.0f};
  {
    io::ArtifactWriter w;
    w.add_floats("w", {4}, f.data());
    w.save(path);
  }

  // Future format version (offset 4 = version u32): Format, with a
  // recompile hint — never a partial read. The CRC covers only the payload,
  // so this exercises the version gate, not the checksum.
  corrupt_byte(path, 4, 0x40);
  try {
    io::ArtifactReader::open(path);
    FAIL() << "version mismatch not rejected";
  } catch (const io::H5LiteError& e) {
    EXPECT_EQ(e.kind(), io::H5LiteError::Kind::Format);
    EXPECT_NE(std::string(e.what()).find("recompile"), std::string::npos);
  }
  corrupt_byte(path, 4, 0x40);  // restore

  // Payload bit flip: Crc.
  corrupt_byte(path, -8, 0x01);  // inside the final blob, before the CRC tail
  try {
    io::ArtifactReader::open(path);
    FAIL() << "CRC corruption not rejected";
  } catch (const io::H5LiteError& e) {
    EXPECT_EQ(e.kind(), io::H5LiteError::Kind::Crc);
  }
  corrupt_byte(path, -8, 0x01);  // restore
  EXPECT_NO_THROW(io::ArtifactReader::open(path));

  // Truncation: Truncated.
  {
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 6);
    try {
      io::ArtifactReader::open(path);
      FAIL() << "truncation not rejected";
    } catch (const io::H5LiteError& e) {
      EXPECT_EQ(e.kind(), io::H5LiteError::Kind::Truncated);
    }
  }
  // Bad magic: Format.
  corrupt_byte(path, 0, 0x7f);
  try {
    io::ArtifactReader::open(path);
    FAIL() << "bad magic not rejected";
  } catch (const io::H5LiteError& e) {
    EXPECT_EQ(e.kind(), io::H5LiteError::Kind::Format);
  }
  std::filesystem::remove(path);
}

TEST(CompiledArtifact, PreviousArtifactVersionRejectedWholeFile) {
  const std::string path = tmp_path("df_artifact_prev_version.dfca");
  const std::vector<float> f = {1.0f, 2.0f};
  {
    io::ArtifactWriter w;
    w.add_floats("w", {2}, f.data());
    w.save(path);
  }

  // Patch the version field (offset 4, u32 LE) from the current version to
  // the previous one — the exact file a pre-int8 build would have written.
  // v1 artifacts predate the int8/int32 section dtypes, so the v2 reader
  // must reject them whole-file (Format, with the recompile hint) rather
  // than hand out the sections it could still interpret: compiled artifacts
  // are caches, and the recovery path is recompile, never migration.
  ASSERT_GE(io::kArtifactVersion, 2u);
  corrupt_byte(path, 4,
               static_cast<char>(io::kArtifactVersion ^ (io::kArtifactVersion - 1)));
  try {
    io::ArtifactReader::open(path);
    FAIL() << "previous artifact version not rejected";
  } catch (const io::H5LiteError& e) {
    EXPECT_EQ(e.kind(), io::H5LiteError::Kind::Format);
    EXPECT_NE(std::string(e.what()).find("recompile"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(CompiledArtifact, DamagedArtifactNeverPartiallyLoadsAModel) {
  const std::string path = tmp_path("df_artifact_partial.dfca");
  auto model = family_factories()[0].second();  // cnn3d
  compile::save_compiled(*model, path);
  EXPECT_NO_THROW(compile::load_compiled(path));

  corrupt_byte(path, -100, 0x10);
  EXPECT_THROW(compile::load_compiled(path), io::H5LiteError);
  std::filesystem::remove(path);
}

// ---- end-to-end: artifact replicas vs h5-checkpoint replicas -------------

TEST(CompiledArtifact, AllFamiliesScoreBitwiseEqualToH5PathWithZeroColdStartAllocs) {
  Rng rng(71);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto poses = make_poses(5, &pocket, rng);
  std::vector<const serve::PoseInput*> ptrs;
  for (const auto& p : poses) ptrs.push_back(&p);

  for (auto& [name, factory] : family_factories()) {
    SCOPED_TRACE(name);
    const std::string h5 = tmp_path("df_ckpt_" + name + ".h5");
    const std::string artifact = tmp_path("df_model_" + name + ".dfca");

    // Reference path: weights through the h5 checkpoint, uncompiled model.
    {
      auto donor = factory();
      models::save_checkpoint(*donor, h5);
    }
    auto h5_model = factory();
    models::load_checkpoint(*h5_model, h5);
    serve::RegressorScorer h5_scorer(name, std::move(h5_model), tiny_voxel(), {});
    std::vector<float> want;
    for (int i = 0; i < 3; ++i) want = h5_scorer.score(ptrs);  // warm the arenas
    const auto budgets = h5_scorer.workspace_capacities();
    EXPECT_GT(budgets.forward_floats, 0u);

    // Compiled path: fold/strip/prepack, serialize with the measured
    // workspace budgets, restore through the registry factory.
    {
      auto donor = factory();
      compile::save_compiled(*donor, artifact, static_cast<int64_t>(ptrs.size()),
                             {static_cast<int64_t>(budgets.forward_floats),
                              static_cast<int64_t>(budgets.feat_floats)});
    }
    serve::ModelRegistry reg;
    serve::add_compiled(reg, name, artifact, tiny_voxel());
    std::unique_ptr<serve::Scorer> replica = reg.make(name);

    // Cold start is allocation-free: the artifact carried the high-water
    // budgets, so the very FIRST batch neither grows an arena nor touches
    // the heap for tensor data.
    const uint64_t before = core::alloc_count();
    const std::vector<float> got_first = replica->score(ptrs);
    EXPECT_EQ(core::alloc_count(), before)
        << "first batch on an artifact-restored replica touched the heap";

    ASSERT_EQ(got_first.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got_first[i], want[i]) << "pose " << i;  // bitwise
    }
    // Steady state stays pinned too.
    for (int rep = 0; rep < 3; ++rep) {
      const std::vector<float> again = replica->score(ptrs);
      for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(again[i], want[i]);
    }
    EXPECT_EQ(core::alloc_count(), before);

    std::filesystem::remove(h5);
    std::filesystem::remove(artifact);
  }
}

TEST(CompiledArtifact, CompiledReplicaRefusesTraining) {
  const std::string artifact = tmp_path("df_model_evalonly.dfca");
  {
    auto donor = family_factories()[0].second();
    compile::save_compiled(*donor, artifact);
  }
  compile::CompiledModel cm = compile::load_compiled(artifact);
  EXPECT_EQ(cm.family, compile::ModelFamily::kCnn3d);
  data::Sample s;
  const models::Cnn3dConfig cfg = tiny_cnn_cfg();
  Rng rng(81);
  s.voxel = Tensor::randn({1, cfg.in_channels, cfg.grid_dim, cfg.grid_dim, cfg.grid_dim}, rng);
  EXPECT_THROW(cm.model->forward_train(s), std::logic_error);
  EXPECT_THROW(cm.model->backward(1.0f), std::logic_error);
  EXPECT_THROW(cm.model->set_training(true), std::logic_error);
  EXPECT_NO_THROW(cm.model->set_training(false));
  EXPECT_NO_THROW(cm.model->predict(s));
  std::filesystem::remove(artifact);
}

TEST(CompiledArtifact, SharedMappingServesManyReplicasIdentically) {
  Rng rng(91);
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  const auto poses = make_poses(3, &pocket, rng);
  std::vector<const serve::PoseInput*> ptrs;
  for (const auto& p : poses) ptrs.push_back(&p);

  const std::string artifact = tmp_path("df_model_shared.dfca");
  {
    auto donor = family_factories()[2].second();  // fusion
    compile::save_compiled(*donor, artifact);
  }
  std::shared_ptr<io::ArtifactReader> image = io::ArtifactReader::open(artifact);
  // The artifact file can disappear once mapped — replicas keep the mapping
  // alive through the shared reader.
  std::filesystem::remove(artifact);

  compile::CompiledModel a = compile::load_compiled(image);
  compile::CompiledModel b = compile::load_compiled(image);
  serve::RegressorScorer sa("fusion", std::move(a.model), tiny_voxel(), {});
  serve::RegressorScorer sb("fusion", std::move(b.model), tiny_voxel(), {});
  const std::vector<float> ra = sa.score(ptrs);
  const std::vector<float> rb = sb.score(ptrs);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
}

}  // namespace
}  // namespace df
