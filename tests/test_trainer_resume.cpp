// Trainer checkpoint/resume property tests (the trainer analogue of
// test_campaign_resume): a training run killed after ANY number of
// optimizer steps and resumed from its last checkpoint must produce final
// parameters and a TrainResult bitwise identical to the uninterrupted run
// — with dropout, shuffling and rotation augmentation active, so the
// cursor-derived RNG streams are what actually carries the guarantee.
#include <gtest/gtest.h>

#include <filesystem>

#include "trainer_test_utils.h"

namespace df::models {
namespace {

namespace fs = std::filesystem;
namespace tu = testutil;

class TrainerResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("df_train_resume_" +
             std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
    corpus_ = tu::make_corpus(16, 51, /*augment=*/true);
    ASSERT_GT(corpus_->val->size(), 0u);  // empty val would weaken every pin
  }
  void TearDown() override { fs::remove_all(root_); }

  TrainConfig config(const std::string& name, int checkpoint_every) {
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 6;
    tc.lr = 1e-3f;
    tc.grad_shards = 4;
    tc.seed = 99;
    tc.checkpoint_path = (root_ / (name + ".ckpt")).string();
    tc.checkpoint_every_batches = checkpoint_every;
    return tc;
  }

  TrainResult train_into(Regressor& model, const TrainConfig& tc) {
    return train_model(model, *corpus_->train, *corpus_->val, tc);
  }

  fs::path root_;
  std::unique_ptr<tu::Corpus> corpus_;
};

TEST_F(TrainerResumeTest, KilledAtEveryStepResumesExactly) {
  // Reference: uninterrupted run (checkpointing on — it must not change
  // arithmetic, which KilledAtEveryStep's comparison also verifies against
  // a checkpoint-free run below).
  std::unique_ptr<Regressor> ref_model = tu::cnn_factory()();
  const TrainResult ref = train_into(*ref_model, config("ref", 1));

  TrainConfig plain = config("plain", 0);
  plain.checkpoint_path.clear();
  std::unique_ptr<Regressor> plain_model = tu::cnn_factory()();
  const TrainResult plain_res = train_into(*plain_model, plain);
  tu::expect_results_bitwise_equal(ref, plain_res);
  tu::expect_parameters_bitwise_equal(*ref_model, *plain_model);

  const int64_t total_steps =
      static_cast<int64_t>(ref.epochs.size()) *
      static_cast<int64_t>((corpus_->train->size() + 5) / 6);  // ceil(n/batch) per epoch
  ASSERT_GE(total_steps, 4);

  for (int64_t kill_at = 1; kill_at <= total_steps; ++kill_at) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    TrainConfig tc = config("kill" + std::to_string(kill_at), 1);
    tc.kill_after_steps = kill_at;
    std::unique_ptr<Regressor> model = tu::cnn_factory()();
    EXPECT_THROW(train_into(*model, tc), TrainerKilled);

    tc.kill_after_steps = -1;  // "new process": resume from disk
    std::unique_ptr<Regressor> resumed_model = tu::cnn_factory()();
    const TrainResult resumed = train_into(*resumed_model, tc);
    tu::expect_results_bitwise_equal(ref, resumed);
    tu::expect_parameters_bitwise_equal(*ref_model, *resumed_model);
  }
}

TEST_F(TrainerResumeTest, SparseCheckpointsReplayTheGap) {
  // Checkpoint every 2 steps but kill on odd steps: the resume must replay
  // the uncheckpointed batch bit-exactly from the derived streams.
  std::unique_ptr<Regressor> ref_model = tu::cnn_factory()();
  const TrainResult ref = train_into(*ref_model, config("ref", 2));
  for (int64_t kill_at : {1, 3}) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    TrainConfig tc = config("sparse" + std::to_string(kill_at), 2);
    tc.kill_after_steps = kill_at;
    std::unique_ptr<Regressor> model = tu::cnn_factory()();
    EXPECT_THROW(train_into(*model, tc), TrainerKilled);
    tc.kill_after_steps = -1;
    std::unique_ptr<Regressor> resumed_model = tu::cnn_factory()();
    const TrainResult resumed = train_into(*resumed_model, tc);
    tu::expect_results_bitwise_equal(ref, resumed);
    tu::expect_parameters_bitwise_equal(*ref_model, *resumed_model);
  }
}

TEST_F(TrainerResumeTest, DoubleKillThenResumeStillExact) {
  std::unique_ptr<Regressor> ref_model = tu::cnn_factory()();
  const TrainResult ref = train_into(*ref_model, config("ref", 1));

  TrainConfig tc = config("twice", 1);
  tc.kill_after_steps = 1;
  std::unique_ptr<Regressor> m1 = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m1, tc), TrainerKilled);
  tc.kill_after_steps = 2;  // counts steps in THIS process
  std::unique_ptr<Regressor> m2 = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m2, tc), TrainerKilled);
  tc.kill_after_steps = -1;
  std::unique_ptr<Regressor> m3 = tu::cnn_factory()();
  const TrainResult resumed = train_into(*m3, tc);
  tu::expect_results_bitwise_equal(ref, resumed);
  tu::expect_parameters_bitwise_equal(*ref_model, *m3);
}

TEST_F(TrainerResumeTest, ResumeAfterCompletionRunsNoSteps) {
  TrainConfig tc = config("done", 1);
  std::unique_ptr<Regressor> model = tu::cnn_factory()();
  const TrainResult first = train_into(*model, tc);

  // kill_after_steps=1 would throw on the first optimizer step; completing
  // without throwing proves the resumed run trained nothing.
  tc.kill_after_steps = 1;
  std::unique_ptr<Regressor> again_model = tu::cnn_factory()();
  const TrainResult again = train_into(*again_model, tc);
  tu::expect_results_bitwise_equal(first, again);
  tu::expect_parameters_bitwise_equal(*model, *again_model);
}

TEST_F(TrainerResumeTest, ParallelResumeMatchesSerialReference) {
  // Kill a serial run, resume with 4 lanes: thread count is not part of
  // the checkpoint geometry, and bits must not change.
  std::unique_ptr<Regressor> ref_model = tu::cnn_factory()();
  const TrainResult ref = train_into(*ref_model, config("ref", 1));

  TrainConfig tc = config("par", 1);
  tc.kill_after_steps = 2;
  std::unique_ptr<Regressor> m1 = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m1, tc), TrainerKilled);
  tc.kill_after_steps = -1;
  tc.threads = 4;
  tc.replica_factory = tu::cnn_factory();
  std::unique_ptr<Regressor> m2 = tu::cnn_factory()();
  const TrainResult resumed = train_into(*m2, tc);
  tu::expect_results_bitwise_equal(ref, resumed);
  tu::expect_parameters_bitwise_equal(*ref_model, *m2);
}

TEST_F(TrainerResumeTest, GeometryMismatchRejected) {
  TrainConfig tc = config("geom", 1);
  tc.kill_after_steps = 1;
  std::unique_ptr<Regressor> model = tu::cnn_factory()();
  EXPECT_THROW(train_into(*model, tc), TrainerKilled);

  TrainConfig wrong = tc;
  wrong.kill_after_steps = -1;
  wrong.batch_size = 4;  // would change shard boundaries and bits
  std::unique_ptr<Regressor> m2 = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m2, wrong), std::runtime_error);

  wrong = tc;
  wrong.kill_after_steps = -1;
  wrong.seed = 100;  // different stream root
  std::unique_ptr<Regressor> m3 = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m3, wrong), std::runtime_error);

  wrong = tc;
  wrong.kill_after_steps = -1;
  wrong.lr = 5e-3f;  // a different optimizer trajectory, bit for bit
  std::unique_ptr<Regressor> m4 = tu::cnn_factory()();
  // The rejected resume must not have touched the model either: its
  // parameters still equal a fresh factory build.
  std::unique_ptr<Regressor> fresh = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m4, wrong), std::runtime_error);
  tu::expect_parameters_bitwise_equal(*m4, *fresh);
}

TEST_F(TrainerResumeTest, StaleLongerCheckpointRejectedButExtendingAllowed) {
  // A checkpoint further into training than cfg.epochs is stale history →
  // rejected. The other direction — raising the epoch budget — resumes,
  // and must be bit-equal to an uninterrupted run of the longer length
  // (epoch-keyed streams make continuation exact).
  TrainConfig tc = config("stale", 1);
  std::unique_ptr<Regressor> m = tu::cnn_factory()();
  train_into(*m, tc);  // completes 2 epochs; cursor at (2, 0)

  TrainConfig shorter = tc;
  shorter.epochs = 1;
  std::unique_ptr<Regressor> m2 = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m2, shorter), std::runtime_error);

  TrainConfig full3 = config("stale_ref", 1);
  full3.epochs = 3;
  std::unique_ptr<Regressor> ref = tu::cnn_factory()();
  const TrainResult full = train_into(*ref, full3);
  TrainConfig extend = tc;
  extend.epochs = 3;
  std::unique_ptr<Regressor> m3 = tu::cnn_factory()();
  const TrainResult extended = train_into(*m3, extend);
  tu::expect_results_bitwise_equal(full, extended);
  tu::expect_parameters_bitwise_equal(*ref, *m3);
}

TEST_F(TrainerResumeTest, KillBeforeFirstStep) {
  TrainConfig tc = config("kill0", 1);
  tc.kill_after_steps = 0;
  std::unique_ptr<Regressor> m = tu::cnn_factory()();
  EXPECT_THROW(train_into(*m, tc), TrainerKilled);
}

TEST_F(TrainerResumeTest, EveryOptimizerStateRoundTrips) {
  // Adam's moments/step count, RMSprop and Adadelta accumulators, SGD
  // momentum: each must survive the checkpoint for resume to be exact.
  const nn::OptimizerKind kinds[] = {nn::OptimizerKind::kAdam, nn::OptimizerKind::kAdamW,
                                     nn::OptimizerKind::kRMSprop, nn::OptimizerKind::kAdadelta,
                                     nn::OptimizerKind::kSGD};
  for (nn::OptimizerKind kind : kinds) {
    SCOPED_TRACE(nn::optimizer_name(kind));
    const std::string name = std::string("opt_") + nn::optimizer_name(kind);
    TrainConfig tc = config(name, 1);
    tc.optimizer = kind;
    tc.epochs = 1;
    std::unique_ptr<Regressor> ref_model = tu::sg_factory()();
    TrainConfig ref_tc = tc;
    ref_tc.checkpoint_path = (root_ / (name + "_ref.ckpt")).string();
    const TrainResult ref = train_into(*ref_model, ref_tc);

    tc.kill_after_steps = 1;
    std::unique_ptr<Regressor> model = tu::sg_factory()();
    EXPECT_THROW(train_into(*model, tc), TrainerKilled);
    tc.kill_after_steps = -1;
    std::unique_ptr<Regressor> resumed_model = tu::sg_factory()();
    const TrainResult resumed = train_into(*resumed_model, tc);
    tu::expect_results_bitwise_equal(ref, resumed);
    tu::expect_parameters_bitwise_equal(*ref_model, *resumed_model);
  }
}

}  // namespace
}  // namespace df::models
