// Fault-injection tests for the sharded result writers (§4.2): damaged
// shards — missing, truncated, bit-flipped — must be *reported*, never
// silently dropped; the append-mode stream must salvage its valid prefix;
// and the stochastic fault injector must reproduce the §4.3 failure table.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "io/h5lite.h"
#include "screen/cluster.h"
#include "screen/writer.h"

namespace df::screen {
namespace {

namespace fs = std::filesystem;

class WriterFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("df_writer_faults_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

void flip_byte(const std::string& path, std::streamoff offset_from_end) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  ASSERT_GT(size, offset_from_end);
  f.seekg(size - offset_from_end);
  char b;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(size - offset_from_end);
  f.write(&b, 1);
}

ShardBlock make_block(uint64_t unit, int64_t base, size_t rows) {
  ShardBlock b;
  b.unit_id = unit;
  for (size_t i = 0; i < rows; ++i) {
    b.compound_ids.push_back(base + static_cast<int64_t>(i));
    b.target_ids.push_back(static_cast<int64_t>(unit % 4));
    b.pose_ids.push_back(static_cast<int64_t>(i));
    b.predictions.push_back(static_cast<float>(base) + 0.25f * static_cast<float>(i));
  }
  return b;
}

// --- one-shot h5lite shards -----------------------------------------------

TEST_F(WriterFaultsTest, HealthyShardsReadComplete) {
  std::vector<int64_t> c{1, 2, 3, 4, 5}, t{0, 0, 1, 1, 2}, p{0, 1, 0, 1, 0};
  std::vector<float> y{1.f, 2.f, 3.f, 4.f, 5.f};
  const auto files = write_sharded_results(path("job"), 3, c, t, p, y);
  const GatheredResults g = read_sharded_results(files);
  EXPECT_TRUE(g.complete());
  EXPECT_EQ(g.predictions.size(), 5u);
}

TEST_F(WriterFaultsTest, MissingShardReported) {
  std::vector<int64_t> c{1, 2, 3, 4}, t{0, 0, 0, 0}, p{0, 1, 2, 3};
  std::vector<float> y{1.f, 2.f, 3.f, 4.f};
  const auto files = write_sharded_results(path("job"), 2, c, t, p, y);
  fs::remove(files[1]);
  const GatheredResults g = read_sharded_results(files);
  EXPECT_FALSE(g.complete());
  ASSERT_EQ(g.damage.size(), 1u);
  EXPECT_EQ(g.damage[0].kind, ShardDamageKind::MissingFile);
  EXPECT_EQ(g.damage[0].file, files[1]);
  EXPECT_EQ(g.predictions.size(), 2u);  // healthy shard still read
}

TEST_F(WriterFaultsTest, TruncatedShardReported) {
  std::vector<int64_t> c(64), t(64), p(64);
  std::vector<float> y(64, 1.0f);
  for (int i = 0; i < 64; ++i) c[static_cast<size_t>(i)] = i;
  const auto files = write_sharded_results(path("job"), 2, c, t, p, y);
  fs::resize_file(files[0], fs::file_size(files[0]) / 2);
  const GatheredResults g = read_sharded_results(files);
  ASSERT_EQ(g.damage.size(), 1u);
  EXPECT_EQ(g.damage[0].kind, ShardDamageKind::TruncatedBlock);
  EXPECT_EQ(g.predictions.size(), 32u);
}

TEST_F(WriterFaultsTest, CorruptShardReportedAsCrcMismatch) {
  std::vector<int64_t> c{1, 2, 3, 4}, t{0, 0, 0, 0}, p{0, 1, 2, 3};
  std::vector<float> y{1.f, 2.f, 3.f, 4.f};
  const auto files = write_sharded_results(path("job"), 2, c, t, p, y);
  flip_byte(files[0], 9);  // inside the float payload, not the trailing CRC
  const GatheredResults g = read_sharded_results(files);
  ASSERT_EQ(g.damage.size(), 1u);
  EXPECT_EQ(g.damage[0].kind, ShardDamageKind::CrcMismatch);
  EXPECT_EQ(g.predictions.size(), 2u);
}

TEST_F(WriterFaultsTest, GarbageFileReportedAsBadHeader) {
  std::ofstream(path("garbage.h5lt")) << "not an h5lite file";
  const GatheredResults g = read_sharded_results({path("garbage.h5lt")});
  ASSERT_EQ(g.damage.size(), 1u);
  EXPECT_EQ(g.damage[0].kind, ShardDamageKind::BadHeader);
}

// --- append-mode campaign shards ------------------------------------------

TEST_F(WriterFaultsTest, ShardStreamRoundTrip) {
  const std::string p = shard_stream_path(path("camp"), 0);
  {
    ShardStream s(p);
    s.append(make_block(0, 100, 5));
    s.append(make_block(2, 200, 3));
  }
  {
    ShardStream s(p);  // reopen appends, does not rewrite
    s.append(make_block(4, 300, 4));
  }
  const ShardScan scan = scan_shard_stream(p);
  EXPECT_TRUE(scan.damage.empty());
  ASSERT_EQ(scan.blocks.size(), 3u);
  EXPECT_EQ(scan.blocks[0].unit_id, 0u);
  EXPECT_EQ(scan.blocks[1].unit_id, 2u);
  EXPECT_EQ(scan.blocks[2].unit_id, 4u);
  EXPECT_EQ(scan.rows(), 12);
  EXPECT_FLOAT_EQ(scan.blocks[1].predictions[2], 200.5f);
  EXPECT_EQ(scan.blocks[2].compound_ids[3], 303);
}

TEST_F(WriterFaultsTest, TornTailSalvagesValidPrefix) {
  const std::string p = shard_stream_path(path("camp"), 0);
  {
    ShardStream s(p);
    s.append(make_block(0, 100, 5));
    s.append(make_block(1, 200, 5));
  }
  tear_shard_tail(p, 7);  // crash mid-append of block 1
  const ShardScan scan = scan_shard_stream(p);
  ASSERT_EQ(scan.damage.size(), 1u);
  EXPECT_EQ(scan.damage[0].kind, ShardDamageKind::TruncatedBlock);
  EXPECT_EQ(scan.damage[0].rows_recovered, 5);
  ASSERT_EQ(scan.blocks.size(), 1u);
  EXPECT_EQ(scan.blocks[0].unit_id, 0u);
}

TEST_F(WriterFaultsTest, BitFlipStopsScanWithCrcMismatch) {
  const std::string p = shard_stream_path(path("camp"), 0);
  {
    ShardStream s(p);
    s.append(make_block(0, 100, 5));
    s.append(make_block(1, 200, 5));
  }
  flip_byte(p, 20);  // inside block 1's payload
  const ShardScan scan = scan_shard_stream(p);
  ASSERT_EQ(scan.damage.size(), 1u);
  EXPECT_EQ(scan.damage[0].kind, ShardDamageKind::CrcMismatch);
  ASSERT_EQ(scan.blocks.size(), 1u);
}

TEST_F(WriterFaultsTest, MissingStreamReported) {
  const ShardScan scan = scan_shard_stream(path("nope.dfsh"));
  ASSERT_EQ(scan.damage.size(), 1u);
  EXPECT_EQ(scan.damage[0].kind, ShardDamageKind::MissingFile);
}

TEST_F(WriterFaultsTest, CompactDropsUnvouchedAndDamagedBlocks) {
  const std::string p = shard_stream_path(path("camp"), 0);
  {
    ShardStream s(p);
    s.append(make_block(0, 100, 4));
    s.append(make_block(1, 200, 4));
    s.append(make_block(2, 300, 4));
  }
  tear_shard_tail(p, 5);  // block 2 torn
  compact_shard_stream(p, [](uint64_t unit) { return unit != 1; });  // drop block 1
  const ShardScan scan = scan_shard_stream(p);
  EXPECT_TRUE(scan.damage.empty());
  ASSERT_EQ(scan.blocks.size(), 1u);
  EXPECT_EQ(scan.blocks[0].unit_id, 0u);
  // Appending after compaction continues the stream.
  {
    ShardStream s(p);
    s.append(make_block(7, 700, 2));
  }
  EXPECT_EQ(scan_shard_stream(p).blocks.size(), 2u);
}

TEST_F(WriterFaultsTest, ManifestDetectsPostRunDamage) {
  const std::string prefix = path("camp");
  {
    ShardStream a(shard_stream_path(prefix, 0));
    a.append(make_block(0, 100, 4));
    ShardStream b(shard_stream_path(prefix, 1));
    b.append(make_block(1, 200, 4));
  }
  write_shard_manifest(prefix, 2);
  EXPECT_TRUE(verify_shard_manifest(prefix).empty());

  flip_byte(shard_stream_path(prefix, 0), 10);
  auto damage = verify_shard_manifest(prefix);
  ASSERT_EQ(damage.size(), 1u);
  EXPECT_EQ(damage[0].kind, ShardDamageKind::CrcMismatch);

  fs::remove(shard_stream_path(prefix, 1));
  damage = verify_shard_manifest(prefix);
  ASSERT_EQ(damage.size(), 2u);
  EXPECT_EQ(damage[1].kind, ShardDamageKind::MissingFile);
}

TEST_F(WriterFaultsTest, ManifestItselfProtected) {
  const std::string prefix = path("camp");
  ShardStream(shard_stream_path(prefix, 0)).close();
  write_shard_manifest(prefix, 1);
  flip_byte(shard_manifest_path(prefix), 6);
  const auto damage = verify_shard_manifest(prefix);
  ASSERT_EQ(damage.size(), 1u);
  EXPECT_EQ(damage[0].file, shard_manifest_path(prefix));
}

// --- §4.3 failure statistics ----------------------------------------------

TEST(FaultInjector, StochasticRatesMatchPaperTable) {
  // Empirical failure rate over many independent (unit, attempt) draws must
  // track the §4.3 table: ~2% at 1-2 nodes, ~3% at 4, ~20% at 8. Tolerance
  // is ~4 sigma of the binomial at n=6000.
  StochasticFaultInjector inj;
  const int n = 6000;
  for (const int nodes : {1, 2, 4, 8}) {
    const int ranks = nodes * 4;
    int failures = 0;
    for (int u = 0; u < n; ++u) {
      const int rank = inj.doomed_rank(/*campaign_seed=*/2021, static_cast<uint32_t>(u),
                                       /*attempt=*/0, nodes, ranks);
      if (rank >= 0) {
        ++failures;
        EXPECT_LT(rank, ranks);
      }
    }
    const double p = job_failure_probability(nodes);
    const double rate = static_cast<double>(failures) / n;
    const double tol = 4.0 * std::sqrt(p * (1.0 - p) / n);
    EXPECT_NEAR(rate, p, tol) << "nodes=" << nodes;
  }
}

TEST(FaultInjector, DecisionsAreReplayable) {
  StochasticFaultInjector inj;
  for (uint32_t u = 0; u < 200; ++u) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const int a = inj.doomed_rank(7, u, attempt, 8, 8);
      const int b = inj.doomed_rank(7, u, attempt, 8, 8);
      EXPECT_EQ(a, b);
    }
  }
}

TEST(FaultInjector, ScriptedKillsExactlyWhatItWasTold) {
  ScriptedFaultInjector inj;
  inj.doom(3, 0, 2);
  inj.doom(3, 1, 0);
  EXPECT_EQ(inj.doomed_rank(1, 3, 0, 4, 16), 2);
  EXPECT_EQ(inj.doomed_rank(1, 3, 1, 4, 16), 0);
  EXPECT_EQ(inj.doomed_rank(1, 3, 2, 4, 16), -1);
  EXPECT_EQ(inj.doomed_rank(1, 4, 0, 4, 16), -1);
}

}  // namespace
}  // namespace df::screen
