#include <gtest/gtest.h>

#include <set>

#include "data/loader.h"
#include "data/splits.h"

namespace df::data {
namespace {

using core::Rng;

std::vector<ComplexRecord> tiny_corpus(int n, Rng& rng) {
  PdbbindConfig cfg;
  cfg.num_complexes = n;
  cfg.core_size = std::max(2, n / 10);
  cfg.settle_runs = 1;
  cfg.settle_steps = 5;
  return SyntheticPdbbind(cfg).generate(rng);
}

TEST(QuintileSplit, PartitionsWithoutOverlap) {
  Rng rng(1);
  const auto recs = tiny_corpus(50, rng);
  std::vector<int> all(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) all[i] = static_cast<int>(i);
  const TrainValSplit split = quintile_split(recs, all, 0.2f, rng);
  EXPECT_EQ(split.train.size() + split.val.size(), recs.size());
  std::set<int> train_set(split.train.begin(), split.train.end());
  for (int v : split.val) EXPECT_FALSE(train_set.count(v));
}

TEST(QuintileSplit, ValCoversAffinityRange) {
  Rng rng(2);
  const auto recs = tiny_corpus(100, rng);
  std::vector<int> all(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) all[i] = static_cast<int>(i);
  const TrainValSplit split = quintile_split(recs, all, 0.2f, rng);
  // The guarantee of quintile sampling: validation spans the pk range, so
  // its min must fall in the lowest quintile and max in the highest.
  std::vector<float> all_pk, val_pk;
  for (int i : all) all_pk.push_back(recs[static_cast<size_t>(i)].pk);
  for (int i : split.val) val_pk.push_back(recs[static_cast<size_t>(i)].pk);
  std::sort(all_pk.begin(), all_pk.end());
  const float q1 = all_pk[all_pk.size() / 5];
  const float q4 = all_pk[all_pk.size() * 4 / 5];
  EXPECT_LE(*std::min_element(val_pk.begin(), val_pk.end()), q1);
  EXPECT_GE(*std::max_element(val_pk.begin(), val_pk.end()), q4);
}

TEST(QuintileSplit, FractionRespected) {
  Rng rng(3);
  const auto recs = tiny_corpus(100, rng);
  std::vector<int> all(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) all[i] = static_cast<int>(i);
  const TrainValSplit split = quintile_split(recs, all, 0.1f, rng);
  EXPECT_NEAR(static_cast<double>(split.val.size()) / recs.size(), 0.1, 0.05);
}

TEST(PdbbindTrainVal, ExcludesCoreSet) {
  Rng rng(4);
  const auto recs = tiny_corpus(80, rng);
  const TrainValSplit split = pdbbind_train_val(recs, 0.1f, rng);
  for (int i : split.train) EXPECT_FALSE(recs[static_cast<size_t>(i)].in_core);
  for (int i : split.val) EXPECT_FALSE(recs[static_cast<size_t>(i)].in_core);
}

TEST(Dataset, FeaturizesWithLabels) {
  Rng rng(5);
  const auto recs = tiny_corpus(10, rng);
  DatasetConfig cfg;
  cfg.voxel.grid_dim = 8;
  ComplexDataset ds(&recs, {0, 1, 2}, cfg);
  EXPECT_EQ(ds.size(), 3u);
  Rng frng(6);
  const Sample s = ds.get(1, frng);
  EXPECT_EQ(s.record_index, 1);
  EXPECT_FLOAT_EQ(s.label, recs[1].pk);
  EXPECT_EQ(s.voxel.dim(1), cfg.voxel.channels());
  EXPECT_GT(s.graph.num_nodes(), 0);
}

TEST(Dataset, OutOfRangeIndexThrows) {
  Rng rng(7);
  const auto recs = tiny_corpus(5, rng);
  EXPECT_THROW(ComplexDataset(&recs, {99}), std::out_of_range);
}

TEST(Dataset, AugmentationOnlyAffectsVoxels) {
  Rng rng(8);
  const auto recs = tiny_corpus(5, rng);
  DatasetConfig plain;
  plain.voxel.grid_dim = 8;
  DatasetConfig aug = plain;
  aug.rotation_augment = true;
  aug.rotation_prob = 1.0f;
  ComplexDataset ds_plain(&recs, {0}, plain);
  ComplexDataset ds_aug(&recs, {0}, aug);
  Rng r1(9), r2(9);
  const Sample a = ds_plain.get(0, r1);
  const Sample b = ds_aug.get(0, r2);
  // Graph features identical (rotation-invariant representation)...
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  for (int64_t i = 0; i < a.graph.node_features.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.graph.node_features[i], b.graph.node_features[i]);
  }
  // ...voxels differ (the complex was rotated).
  float diff = 0;
  for (int64_t i = 0; i < a.voxel.numel(); ++i) diff += std::abs(a.voxel[i] - b.voxel[i]);
  EXPECT_GT(diff, 1e-3f);
}

TEST(Loader, DeliversWholeEpochInOrderWithoutShuffle) {
  Rng rng(10);
  const auto recs = tiny_corpus(12, rng);
  DatasetConfig dcfg;
  dcfg.voxel.grid_dim = 8;
  std::vector<int> idx(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) idx[i] = static_cast<int>(i);
  ComplexDataset ds(&recs, idx, dcfg);
  LoaderConfig lc;
  lc.batch_size = 5;
  lc.num_workers = 2;
  lc.shuffle = false;
  DataLoader loader(ds, lc);
  EXPECT_EQ(loader.batches_per_epoch(), 3u);
  loader.start_epoch();
  std::vector<int> seen;
  while (auto batch = loader.next()) {
    for (const Sample& s : *batch) seen.push_back(s.record_index);
  }
  ASSERT_EQ(seen.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(Loader, ShuffleChangesOrderButNotContent) {
  Rng rng(11);
  const auto recs = tiny_corpus(16, rng);
  DatasetConfig dcfg;
  dcfg.voxel.grid_dim = 8;
  std::vector<int> idx(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) idx[i] = static_cast<int>(i);
  ComplexDataset ds(&recs, idx, dcfg);
  LoaderConfig lc;
  lc.batch_size = 4;
  lc.shuffle = true;
  DataLoader loader(ds, lc);
  std::multiset<int> epoch1, epoch2;
  std::vector<int> order1, order2;
  loader.start_epoch();
  while (auto b = loader.next()) {
    for (const Sample& s : *b) {
      epoch1.insert(s.record_index);
      order1.push_back(s.record_index);
    }
  }
  loader.start_epoch();
  while (auto b = loader.next()) {
    for (const Sample& s : *b) {
      epoch2.insert(s.record_index);
      order2.push_back(s.record_index);
    }
  }
  EXPECT_EQ(epoch1, epoch2);  // same multiset of samples
  EXPECT_NE(order1, order2);  // reshuffled between epochs
}

TEST(Loader, RejectsBadConfig) {
  Rng rng(12);
  const auto recs = tiny_corpus(4, rng);
  ComplexDataset ds(&recs, {0, 1});
  LoaderConfig lc;
  lc.batch_size = 0;
  EXPECT_THROW(DataLoader(ds, lc), std::invalid_argument);
}

}  // namespace
}  // namespace df::data
