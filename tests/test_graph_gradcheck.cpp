// Finite-difference checks for the graph layers' hand-written backward
// passes (GRU recurrence, message passing scatter/gather, PotentialNet
// gather). These cover the trickiest gradient code in the library.
#include <gtest/gtest.h>

#include <functional>

#include "core/rng.h"
#include "gradcheck.h"
#include "graph/gated_graph_conv.h"
#include "graph/gather.h"
#include "graph/gru_cell.h"

namespace df::graph {
namespace {

using core::Rng;
using core::Tensor;
using testing::weighted_sum;
using testing::weighted_sum_grad;

/// Generic FD check over an explicit parameter list and re-runnable forward.
void check_params(const std::vector<nn::Parameter*>& params,
                  const std::function<Tensor()>& forward,
                  const std::function<void()>& backward, float eps = 1e-2f, float tol = 3e-2f) {
  for (nn::Parameter* p : params) p->grad.zero();
  backward();
  for (nn::Parameter* p : params) {
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / 8);
    for (int64_t i = 0; i < n; i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = weighted_sum(forward());
      p->value[i] = orig - eps;
      const float lm = weighted_sum(forward());
      p->value[i] = orig;
      const float numeric = (lp - lm) / (2.0f * eps);
      const float analytic = p->grad[i];
      const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic / scale, numeric / scale, tol) << p->name << "[" << i << "]";
    }
  }
}

TEST(GraphGradCheck, GRUCellParams) {
  Rng rng(1);
  GRUCell gru(5, rng);
  Tensor x = Tensor::randn({3, 5}, rng);
  Tensor h = Tensor::randn({3, 5}, rng);
  std::vector<nn::Parameter*> params;
  gru.collect_parameters(params);
  check_params(
      params, [&] { return gru.forward(x, h, false); },
      [&] {
        gru.clear_frames();
        Tensor y = gru.forward(x, h, true);
        gru.backward(weighted_sum_grad(y));
      });
}

TEST(GraphGradCheck, GRUCellInputs) {
  Rng rng(2);
  GRUCell gru(4, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor h = Tensor::randn({2, 4}, rng);
  gru.clear_frames();
  Tensor y = gru.forward(x, h, true);
  auto [dx, dh] = gru.backward(weighted_sum_grad(y));

  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = weighted_sum(gru.forward(x, h, false));
    x[i] = orig - eps;
    const float lm = weighted_sum(gru.forward(x, h, false));
    x[i] = orig;
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 3e-2f) << "x[" << i << "]";
  }
  for (int64_t i = 0; i < h.numel(); ++i) {
    const float orig = h[i];
    h[i] = orig + eps;
    const float lp = weighted_sum(gru.forward(x, h, false));
    h[i] = orig - eps;
    const float lm = weighted_sum(gru.forward(x, h, false));
    h[i] = orig;
    EXPECT_NEAR(dh[i], (lp - lm) / (2 * eps), 3e-2f) << "h[" << i << "]";
  }
}

TEST(GraphGradCheck, GatedGraphConvParams) {
  Rng rng(3);
  GatedGraphConv ggc(4, 3, rng);
  EdgeList edges;
  edges.add_undirected(0, 1);
  edges.add_undirected(1, 2);
  edges.add_undirected(2, 3);
  edges.add_undirected(3, 0);
  Tensor h0 = Tensor::randn({4, 4}, rng, 0.5f);
  std::vector<nn::Parameter*> params;
  ggc.collect_parameters(params);
  check_params(
      params, [&] { return ggc.forward(h0, edges, false); },
      [&] {
        Tensor y = ggc.forward(h0, edges, true);
        ggc.backward(weighted_sum_grad(y));
      });
}

TEST(GraphGradCheck, GatedGraphConvInput) {
  Rng rng(4);
  GatedGraphConv ggc(4, 2, rng);
  EdgeList edges;
  edges.add_undirected(0, 1);
  edges.add_undirected(1, 2);
  Tensor h0 = Tensor::randn({3, 4}, rng, 0.5f);
  Tensor y = ggc.forward(h0, edges, true);
  Tensor dh0 = ggc.backward(weighted_sum_grad(y));

  const float eps = 1e-2f;
  for (int64_t i = 0; i < h0.numel(); ++i) {
    const float orig = h0[i];
    h0[i] = orig + eps;
    const float lp = weighted_sum(ggc.forward(h0, edges, false));
    h0[i] = orig - eps;
    const float lm = weighted_sum(ggc.forward(h0, edges, false));
    h0[i] = orig;
    EXPECT_NEAR(dh0[i], (lp - lm) / (2 * eps), 3e-2f) << "h0[" << i << "]";
  }
}

TEST(GraphGradCheck, GatherParams) {
  Rng rng(5);
  Gather gather(4, 3, 5, rng);
  Tensor h = Tensor::randn({4, 4}, rng);
  Tensor x = Tensor::randn({4, 3}, rng);
  std::vector<nn::Parameter*> params;
  gather.collect_parameters(params);
  check_params(
      params, [&] { return gather.forward_sum(h, x, 2, false); },
      [&] {
        Tensor y = gather.forward_sum(h, x, 2, true);
        gather.backward_sum(weighted_sum_grad(y));
      });
}

TEST(GraphGradCheck, GatherInputGradients) {
  Rng rng(6);
  Gather gather(3, 2, 4, rng);
  Tensor h = Tensor::randn({3, 3}, rng);
  Tensor x = Tensor::randn({3, 2}, rng);
  Tensor y = gather.forward_sum(h, x, 2, true);
  auto [dh, dx] = gather.backward_sum(weighted_sum_grad(y));

  const float eps = 1e-2f;
  for (int64_t i = 0; i < h.numel(); ++i) {
    const float orig = h[i];
    h[i] = orig + eps;
    const float lp = weighted_sum(gather.forward_sum(h, x, 2, false));
    h[i] = orig - eps;
    const float lm = weighted_sum(gather.forward_sum(h, x, 2, false));
    h[i] = orig;
    EXPECT_NEAR(dh[i], (lp - lm) / (2 * eps), 3e-2f) << "h[" << i << "]";
  }
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = weighted_sum(gather.forward_sum(h, x, 2, false));
    x[i] = orig - eps;
    const float lm = weighted_sum(gather.forward_sum(h, x, 2, false));
    x[i] = orig;
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 3e-2f) << "x[" << i << "]";
  }
}

}  // namespace
}  // namespace df::graph
