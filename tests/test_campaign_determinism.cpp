// Determinism pins for the campaign driver: every stochastic stream is
// keyed on (campaign seed, stable work-unit / compound id), never on
// pool-arrival order — so the CampaignReport is bitwise identical across
// worker-pool sizes and across repeated runs, with fault injection on.
#include <gtest/gtest.h>

#include "campaign_test_utils.h"
#include "screen/plan.h"

namespace df::screen {
namespace {

using core::Rng;

TEST(CampaignDeterminism, ReportIndependentOfThreadCount) {
  Rng rng(11);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Protease1, rng),
                                       data::make_target(data::TargetKind::Spike1, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::Enamine, 5), rng);

  CampaignConfig cfg = testutil::tiny_campaign();
  cfg.job.inject_failures = true;  // fault path must be deterministic too
  cfg.job.nodes = 8;               // 20% per-attempt failure rate
  cfg.job.gpus_per_node = 1;

  cfg.threads = 1;
  const CampaignReport serial = ScreeningCampaign(cfg, targets).run(compounds, testutil::tiny_sg_factory());
  cfg.threads = 8;
  const CampaignReport wide = ScreeningCampaign(cfg, targets).run(compounds, testutil::tiny_sg_factory());

  EXPECT_FALSE(serial.results.empty());
  testutil::expect_reports_bitwise_equal(serial, wide);
}

TEST(CampaignDeterminism, RepeatedRunsIdentical) {
  Rng rng(12);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Spike2, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::ZINC, 4), rng);
  const CampaignConfig cfg = testutil::tiny_campaign();
  const CampaignReport a = ScreeningCampaign(cfg, targets).run(compounds, testutil::tiny_sg_factory());
  const CampaignReport b = ScreeningCampaign(cfg, targets).run(compounds, testutil::tiny_sg_factory());
  testutil::expect_reports_bitwise_equal(a, b);
}

TEST(CampaignDeterminism, UnitSeedsKeyOnStableIds) {
  // Seeds separate by unit and attempt, and never depend on anything else.
  EXPECT_EQ(unit_seed(2021, 5, 1), unit_seed(2021, 5, 1));
  EXPECT_NE(unit_seed(2021, 5, 1), unit_seed(2021, 5, 2));
  EXPECT_NE(unit_seed(2021, 5, 1), unit_seed(2021, 6, 1));
  EXPECT_NE(unit_seed(2021, 5, 1), unit_seed(2022, 5, 1));
}

TEST(CampaignDeterminism, RankPlanPartitionIsExact) {
  JobConfig job;
  job.nodes = 2;
  job.gpus_per_node = 4;
  ClusterConfig cluster;
  cluster.num_nodes = 16;
  const RankPlan plan = RankPlan::build(103, 10, job, cluster);
  EXPECT_EQ(plan.ranks_per_job, 8);
  EXPECT_EQ(plan.concurrent_jobs, 8);
  ASSERT_EQ(plan.units.size(), 11u);
  size_t covered = 0;
  for (const WorkUnit& u : plan.units) {
    EXPECT_EQ(u.pose_begin, covered);
    EXPECT_GT(u.pose_end, u.pose_begin);
    EXPECT_LT(u.slot, plan.concurrent_jobs);
    covered = u.pose_end;
  }
  EXPECT_EQ(covered, 103u);
  EXPECT_EQ(plan.units.back().poses(), 3u);
}

}  // namespace
}  // namespace df::screen
