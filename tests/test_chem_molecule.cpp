#include <gtest/gtest.h>

#include "chem/elements.h"
#include "chem/molecule.h"

namespace df::chem {
namespace {

using core::Rng;

TEST(Elements, SymbolRoundTrip) {
  for (int i = 0; i < kNumElements; ++i) {
    const Element e = static_cast<Element>(i);
    EXPECT_EQ(element_from_symbol(element_info(e).symbol), e);
  }
  EXPECT_THROW(element_from_symbol("Xx"), std::invalid_argument);
}

TEST(Elements, ChemicalSanity) {
  EXPECT_EQ(element_info(Element::C).max_valence, 4);
  EXPECT_EQ(element_info(Element::O).max_valence, 2);
  EXPECT_TRUE(element_info(Element::C).hydrophobic);
  EXPECT_TRUE(element_info(Element::N).hbond_acceptor);
  EXPECT_TRUE(element_info(Element::O).hbond_donor_heavy);
  EXPECT_GT(element_info(Element::I).vdw_radius, element_info(Element::F).vdw_radius);
}

TEST(Molecule, BondBookkeeping) {
  Molecule m;
  const int32_t a = m.add_atom(Element::C);
  const int32_t b = m.add_atom(Element::O);
  m.add_bond(a, b, 2);
  EXPECT_EQ(m.num_bonds(), 1u);
  EXPECT_EQ(m.degree(a), 1);
  EXPECT_EQ(m.bond_order_sum(a), 2);
  EXPECT_THROW(m.add_bond(a, a), std::invalid_argument);
  EXPECT_THROW(m.add_bond(0, 5), std::invalid_argument);
}

TEST(Molecule, MolecularWeightIncludesImplicitH) {
  Molecule m;
  const int32_t c = m.add_atom(Element::C);
  m.atoms()[static_cast<size_t>(c)].implicit_h = 4;  // methane
  EXPECT_NEAR(m.molecular_weight(), 16.04f, 0.05f);
}

TEST(Molecule, RingCountFromCyclomaticNumber) {
  Molecule m;  // cyclohexane-like ring of 6 carbons
  for (int i = 0; i < 6; ++i) m.add_atom(Element::C);
  for (int i = 0; i < 6; ++i) m.add_bond(i, (i + 1) % 6);
  EXPECT_EQ(m.num_rings(), 1);
  // add a fused ring
  m.add_atom(Element::C);
  m.add_atom(Element::C);
  m.add_bond(0, 6);
  m.add_bond(6, 7);
  m.add_bond(7, 3);
  EXPECT_EQ(m.num_rings(), 2);
}

TEST(Molecule, ConnectedComponentsAndSubset) {
  Molecule m;
  m.add_atom(Element::C);
  m.add_atom(Element::C);
  m.add_bond(0, 1);
  m.add_atom(Element::Cl);  // disconnected counter-ion
  auto comps = m.connected_components();
  ASSERT_EQ(comps.size(), 2u);
  Molecule main = m.subset(comps[0].size() >= comps[1].size() ? comps[0] : comps[1]);
  EXPECT_EQ(main.num_atoms(), 2u);
  EXPECT_EQ(main.num_bonds(), 1u);
}

TEST(Molecule, GeometryOps) {
  Molecule m;
  m.add_atom(Element::C, {1, 0, 0});
  m.add_atom(Element::C, {-1, 0, 0});
  const core::Vec3 c = m.centroid();
  EXPECT_FLOAT_EQ(c.x, 0.0f);
  m.translate({0, 2, 0});
  EXPECT_FLOAT_EQ(m.centroid().y, 2.0f);
  // rotate 180 deg about z through centroid swaps x signs
  m.rotate(m.centroid(), {0, 0, 1}, 3.14159265f);
  EXPECT_NEAR(m.atoms()[0].pos.x, -1.0f, 1e-4f);
}

TEST(Molecule, PoseRmsd) {
  Molecule a;
  a.add_atom(Element::C, {0, 0, 0});
  a.add_atom(Element::C, {1, 0, 0});
  Molecule b = a;
  b.translate({0, 3, 4});  // every atom moves 5 A
  EXPECT_NEAR(pose_rmsd(a, b), 5.0f, 1e-5f);
  Molecule c;
  c.add_atom(Element::C);
  EXPECT_THROW(pose_rmsd(a, c), std::invalid_argument);
}

TEST(Molecule, HasMetal) {
  Molecule m;
  m.add_atom(Element::C);
  EXPECT_FALSE(m.has_metal());
  m.add_atom(Element::Metal);
  EXPECT_TRUE(m.has_metal());
}

class GeneratorValence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorValence, NeverExceedsMaxValence) {
  Rng rng(GetParam());
  MoleculeGenConfig cfg;
  const Molecule m = generate_molecule(cfg, rng);
  EXPECT_GE(m.num_atoms(), static_cast<size_t>(cfg.min_heavy_atoms));
  for (size_t i = 0; i < m.num_atoms(); ++i) {
    const Atom& a = m.atoms()[i];
    EXPECT_LE(m.bond_order_sum(static_cast<int32_t>(i)),
              element_info(a.element).max_valence)
        << "atom " << i << " " << element_info(a.element).symbol;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorValence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Generator, ConnectedWithoutSalts) {
  Rng rng(99);
  MoleculeGenConfig cfg;
  cfg.salt_probability = 0.0f;
  cfg.metal_probability = 0.0f;
  for (int i = 0; i < 10; ++i) {
    const Molecule m = generate_molecule(cfg, rng);
    EXPECT_EQ(m.connected_components().size(), 1u);
  }
}

TEST(Generator, SaltsAppearWhenRequested) {
  Rng rng(7);
  MoleculeGenConfig cfg;
  cfg.salt_probability = 1.0f;
  const Molecule m = generate_molecule(cfg, rng);
  EXPECT_GE(m.connected_components().size(), 2u);
}

TEST(Generator, DescriptorsNonDegenerate) {
  Rng rng(11);
  MoleculeGenConfig cfg;
  const Molecule m = generate_molecule(cfg, rng);
  EXPECT_GT(m.molecular_weight(), 50.0f);
  EXPECT_GE(m.num_hbond_acceptors(), 0);
  EXPECT_GE(m.num_rotatable_bonds(), 0);
  EXPECT_GE(m.tpsa_proxy(), 0.0f);
}

}  // namespace
}  // namespace df::chem
