#include <gtest/gtest.h>

#include "data/pdbbind.h"
#include "data/target.h"

namespace df::data {
namespace {

using core::Rng;

PdbbindConfig small_config() {
  PdbbindConfig cfg;
  cfg.num_complexes = 60;
  cfg.core_size = 8;
  cfg.settle_runs = 1;
  cfg.settle_steps = 10;
  return cfg;
}

TEST(Targets, FourSitesWithPaperProperties) {
  Rng rng(1);
  const std::vector<Target> targets = make_sars_cov2_targets(rng);
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0].name, "protease1");
  EXPECT_EQ(targets[3].name, "spike2");
  // Mpro assayed at 100 uM, spike at 10 uM (paper Fig. 5).
  EXPECT_FLOAT_EQ(targets[0].assay_concentration_uM, 100.0f);
  EXPECT_FLOAT_EQ(targets[1].assay_concentration_uM, 100.0f);
  EXPECT_FLOAT_EQ(targets[2].assay_concentration_uM, 10.0f);
  EXPECT_FLOAT_EQ(targets[3].assay_concentration_uM, 10.0f);
  // Protease pockets are larger than spike pockets.
  EXPECT_GT(targets[0].pocket.size(), targets[2].pocket.size());
}

TEST(Pocket, GeometryFollowsConfig) {
  Rng rng(2);
  PocketConfig cfg{6.0f, 50, 0.6f, 0.5f, 0.1f};
  const auto pocket = make_pocket(cfg, rng);
  EXPECT_EQ(pocket.size(), 50u);
  for (const chem::Atom& a : pocket) {
    const float r = a.pos.norm();
    EXPECT_GT(r, 6.0f * 0.9f);
    EXPECT_LT(r, 6.0f * 1.15f);
  }
}

TEST(Oracle, PkWithinRange) {
  Rng rng(3);
  const std::vector<Target> targets = make_sars_cov2_targets(rng);
  chem::MoleculeGenConfig mg;
  for (int i = 0; i < 10; ++i) {
    chem::Molecule m = chem::generate_molecule(mg, rng);
    for (auto& a : m.atoms()) a.pos = {rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    const float pk = oracle_pk(m, targets[0].pocket, targets[0].oracle, &rng);
    EXPECT_GE(pk, 2.0f);
    EXPECT_LE(pk, 11.5f);
  }
}

TEST(Oracle, NoiseFreeIsDeterministic) {
  Rng rng(4);
  const Target t = make_target(TargetKind::Spike1, rng);
  chem::Molecule m = chem::generate_molecule({}, rng);
  for (auto& a : m.atoms()) a.pos = {1, 0, 0};
  EXPECT_FLOAT_EQ(oracle_pk(m, t.pocket, t.oracle, nullptr),
                  oracle_pk(m, t.pocket, t.oracle, nullptr));
}

TEST(Oracle, TopoTermSensitiveToGraph) {
  // Two molecules with identical coordinates but different bond graphs must
  // get different topo contributions — the signal only the SG-CNN sees.
  chem::Molecule chain;
  for (int i = 0; i < 6; ++i) chain.add_atom(chem::Element::C);
  for (int i = 0; i < 5; ++i) chain.add_bond(i, i + 1);
  chem::Molecule ring = chain;
  ring.add_bond(5, 0);  // close the ring
  EXPECT_NE(topo_term(chain), topo_term(ring));
}

TEST(Pdbbind, GeneratesRequestedCount) {
  Rng rng(5);
  SyntheticPdbbind gen(small_config());
  const auto recs = gen.generate(rng);
  EXPECT_EQ(recs.size(), 60u);
  for (const auto& r : recs) {
    EXPECT_EQ(r.id.size(), 4u);
    EXPECT_GE(r.pk, 2.0f);
    EXPECT_LE(r.pk, 11.5f);
    EXPECT_FALSE(r.pocket.empty());
    EXPECT_GT(r.ligand.num_atoms(), 0u);
  }
}

TEST(Pdbbind, RefinedRulesEnforced) {
  Rng rng(6);
  SyntheticPdbbind gen(small_config());
  const auto recs = gen.generate(rng);
  int refined = 0;
  for (const auto& r : recs) {
    if (r.in_refined) {
      ++refined;
      EXPECT_LE(r.ligand.molecular_weight(), 1000.0f);
      EXPECT_NE(r.label_kind, LabelKind::IC50);
      EXPECT_LT(r.resolution, 2.5f);
    }
  }
  EXPECT_GT(refined, 0);
}

TEST(Pdbbind, CoreIsSubsetOfRefinedRules) {
  Rng rng(7);
  SyntheticPdbbind gen(small_config());
  const auto recs = gen.generate(rng);
  int core = 0;
  for (const auto& r : recs) {
    if (r.in_core) {
      ++core;
      // core complexes satisfy refined criteria by construction
      EXPECT_LE(r.ligand.molecular_weight(), 1000.0f);
      EXPECT_LT(r.resolution, 2.5f);
    }
  }
  EXPECT_EQ(core, 8);
}

TEST(Pdbbind, GroupIndicesPartition) {
  Rng rng(8);
  SyntheticPdbbind gen(small_config());
  const auto recs = gen.generate(rng);
  const auto g = SyntheticPdbbind::general_indices(recs);
  const auto r = SyntheticPdbbind::refined_indices(recs);
  const auto c = SyntheticPdbbind::core_indices(recs);
  EXPECT_EQ(g.size() + r.size() + c.size(), recs.size());
}

TEST(Pdbbind, DeterministicGivenSeed) {
  SyntheticPdbbind gen(small_config());
  Rng r1(9), r2(9);
  const auto a = gen.generate(r1);
  const auto b = gen.generate(r2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_FLOAT_EQ(a[i].pk, b[i].pk);
  }
}

TEST(Pdbbind, LabelKindNames) {
  EXPECT_STREQ(label_kind_name(LabelKind::Ki), "Ki");
  EXPECT_STREQ(label_kind_name(LabelKind::Kd), "Kd");
  EXPECT_STREQ(label_kind_name(LabelKind::IC50), "IC50");
}

}  // namespace
}  // namespace df::data
