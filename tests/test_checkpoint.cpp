#include <gtest/gtest.h>

#include <filesystem>

#include "chem/conformer.h"
#include "chem/smiles.h"
#include "data/target.h"
#include "models/checkpoint.h"
#include "models/fusion.h"
#include "models/trainer.h"

namespace df::models {
namespace {

using core::Rng;

std::string tmp(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SgcnnConfig tiny_sg() {
  SgcnnConfig cfg;
  cfg.covalent_gather_width = 8;
  cfg.noncovalent_gather_width = 12;
  cfg.covalent_k = 2;
  cfg.noncovalent_k = 2;
  return cfg;
}

data::Sample sample(Rng& rng) {
  chem::Molecule lig = chem::parse_smiles("CC(N)CC(=O)O");
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  std::vector<chem::Atom> pocket = data::make_pocket({4.5f, 20, 0.6f, 0.5f, 0.1f}, rng);
  data::Sample s;
  chem::VoxelConfig vc;
  vc.grid_dim = 8;
  s.voxel = chem::Voxelizer(vc).voxelize(lig, pocket, {});
  s.graph = chem::GraphFeaturizer().featurize(lig, pocket);
  return s;
}

TEST(Checkpoint, RoundTripRestoresPredictions) {
  Rng rng(1);
  Sgcnn a(tiny_sg(), rng);
  Rng rng2(99);  // different weights
  Sgcnn b(tiny_sg(), rng2);
  Rng srng(2);
  const data::Sample s = sample(srng);
  ASSERT_NE(a.predict(s), b.predict(s));

  const std::string path = tmp("df_ckpt_rt.h5lt");
  save_checkpoint(a, path);
  load_checkpoint(b, path);
  EXPECT_FLOAT_EQ(a.predict(s), b.predict(s));
  std::filesystem::remove(path);
}

TEST(Checkpoint, StructureMismatchRejected) {
  Rng rng(3);
  Sgcnn a(tiny_sg(), rng);
  SgcnnConfig other = tiny_sg();
  other.noncovalent_gather_width = 24;  // different widths
  Sgcnn b(other, rng);
  const std::string path = tmp("df_ckpt_mismatch.h5lt");
  save_checkpoint(a, path);
  EXPECT_THROW(load_checkpoint(b, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, FusionModelRoundTrip) {
  Rng rng(4);
  Cnn3dConfig cc;
  cc.grid_dim = 8;
  cc.conv_filters1 = 4;
  cc.conv_filters2 = 8;
  cc.dense_nodes = 16;
  cc.dropout1 = cc.dropout2 = 0.0f;
  FusionConfig fc;
  fc.kind = FusionKind::Coherent;
  fc.fusion_nodes = 8;
  fc.dropout1 = fc.dropout2 = fc.dropout3 = 0.0f;
  FusionModel a(fc, std::make_shared<Cnn3d>(cc, rng), std::make_shared<Sgcnn>(tiny_sg(), rng),
                rng);
  Rng rng2(77);
  FusionModel b(fc, std::make_shared<Cnn3d>(cc, rng2), std::make_shared<Sgcnn>(tiny_sg(), rng2),
                rng2);
  Rng srng(5);
  const data::Sample s = sample(srng);
  const std::string path = tmp("df_ckpt_fusion.h5lt");
  save_checkpoint(a, path);
  load_checkpoint(b, path);
  EXPECT_FLOAT_EQ(a.predict(s), b.predict(s));
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(6);
  Sgcnn a(tiny_sg(), rng);
  EXPECT_THROW(load_checkpoint(a, "/nonexistent/ckpt.h5lt"), std::runtime_error);
}

TEST(Checkpoint, CopyParametersAgreesWithCheckpoint) {
  // copy_parameters and save/load are two routes to the same state.
  Rng rng(7);
  Sgcnn a(tiny_sg(), rng);
  Rng rng2(55);
  Sgcnn b(tiny_sg(), rng2), c(tiny_sg(), rng2);
  copy_parameters(b, a);
  const std::string path = tmp("df_ckpt_agree.h5lt");
  save_checkpoint(a, path);
  load_checkpoint(c, path);
  Rng srng(8);
  const data::Sample s = sample(srng);
  EXPECT_FLOAT_EQ(b.predict(s), c.predict(s));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace df::models
