// Equivalence pins for the blocked inference engine: sgemm vs the naive
// reference (all transpose variants, odd shapes, 1-8 threads), vol2col
// Conv3d forward/backward vs the direct 7-loop reference, parallel
// voxelizer/maxpool vs serial, batched predict vs per-pose predict, and
// ThreadPool exception propagation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chem/conformer.h"
#include "chem/smiles.h"
#include "chem/voxelizer.h"
#include "core/gemm.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "core/threadpool.h"
#include "data/target.h"
#include "models/fusion.h"
#include "nn/conv3d.h"

namespace df {
namespace {

using core::Rng;
using core::Tensor;

constexpr float kTol = 1e-4f;

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

std::vector<float> random_buf(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

void check_gemm_case(bool ta, bool tb, int64_t m, int64_t n, int64_t k, Rng& rng) {
  const int64_t lda = ta ? m : k;
  const int64_t ldb = tb ? k : n;
  const std::vector<float> A = random_buf((ta ? k : m) * lda, rng);
  const std::vector<float> B = random_buf((tb ? n : k) * ldb, rng);
  std::vector<float> C(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> C_ref = random_buf(m * n, rng);  // accumulate seed
  std::vector<float> C_acc = C_ref;

  core::sgemm(ta, tb, m, n, k, A.data(), lda, B.data(), ldb, C.data(), n);
  std::vector<float> R(static_cast<size_t>(m * n), 0.0f);
  core::sgemm_naive(ta, tb, m, n, k, A.data(), lda, B.data(), ldb, R.data(), n);
  for (size_t i = 0; i < C.size(); ++i) {
    ASSERT_NEAR(C[i], R[i], kTol) << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
                                  << " k=" << k << " i=" << i;
  }

  core::sgemm(ta, tb, m, n, k, A.data(), lda, B.data(), ldb, C_acc.data(), n, /*accumulate=*/true);
  core::sgemm_naive(ta, tb, m, n, k, A.data(), lda, B.data(), ldb, C_ref.data(), n, true);
  for (size_t i = 0; i < C_acc.size(); ++i) ASSERT_NEAR(C_acc[i], C_ref[i], kTol);
}

TEST(Gemm, MatchesNaiveAcrossShapesAndTransposes) {
  Rng rng(11);
  const int64_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {6, 16, 8},   {7, 17, 33},
                               {13, 1, 29}, {1, 31, 13},  {97, 65, 51}, {128, 96, 64},
                               {65, 130, 257}};
  for (const auto& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) check_gemm_case(ta, tb, s[0], s[1], s[2], rng);
    }
  }
}

TEST(Gemm, KZeroClearsOrKeepsC) {
  std::vector<float> C = {1, 2, 3, 4};
  core::sgemm(false, false, 2, 2, 0, nullptr, 1, nullptr, 2, C.data(), 2, /*accumulate=*/true);
  EXPECT_EQ(C[0], 1.0f);
  core::sgemm(false, false, 2, 2, 0, nullptr, 1, nullptr, 2, C.data(), 2);
  for (float v : C) EXPECT_EQ(v, 0.0f);
}

TEST(Gemm, MatchesNaiveOnEveryPoolSize) {
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    core::ThreadPool pool(threads);
    core::ComputePoolGuard guard(&pool);
    Rng rng(23 + threads);
    // Big enough to cross the parallel threshold and span several MC blocks.
    check_gemm_case(false, false, 201, 150, 67, rng);
    check_gemm_case(true, false, 150, 201, 67, rng);
    check_gemm_case(false, true, 97, 203, 129, rng);
  }
}

TEST(Tensor, MatmulVariantsMatchNaive) {
  Rng rng(7);
  Tensor a = Tensor::randn({9, 14}, rng);
  Tensor b = Tensor::randn({14, 11}, rng);
  Tensor c = a.matmul(b);
  Tensor r({9, 11});
  core::sgemm_naive(false, false, 9, 11, 14, a.data(), 14, b.data(), 11, r.data(), 11);
  EXPECT_LE(max_abs_diff(c, r), kTol);

  Tensor at = a.transposed2d();
  EXPECT_LE(max_abs_diff(at.matmul_tn(b), r), kTol);
  Tensor bt = b.transposed2d();
  EXPECT_LE(max_abs_diff(a.matmul_nt(bt), r), kTol);
}

// ---- Conv3d vol2col vs direct reference ----

struct ConvCase {
  int64_t B, cin, cout, D, H, W, k, stride, pad;
};

void check_conv_case(const ConvCase& cc, Rng& rng) {
  nn::Conv3d conv(cc.cin, cc.cout, cc.k, rng, cc.stride, cc.pad);
  auto params = conv.parameters();  // [w, b]
  const Tensor& w = params[0]->value;
  const Tensor& b = params[1]->value;

  Tensor x = Tensor::randn({cc.B, cc.cin, cc.D, cc.H, cc.W}, rng);
  conv.set_training(true);
  Tensor y = conv.forward(x);
  Tensor y_ref = nn::conv3d_forward_naive(x, w, b, cc.stride, cc.pad);
  ASSERT_LE(max_abs_diff(y, y_ref), kTol) << "fwd k=" << cc.k << " s=" << cc.stride
                                          << " p=" << cc.pad;

  Tensor g = Tensor::randn(y.shape(), rng);
  conv.zero_grad();
  Tensor gx = conv.backward(g);
  Tensor gw_ref(w.shape()), gb_ref(b.shape());
  Tensor gx_ref = nn::conv3d_backward_naive(x, w, g, gw_ref, gb_ref, cc.stride, cc.pad);
  EXPECT_LE(max_abs_diff(gx, gx_ref), kTol);
  // Weight/bias grads accumulate over B*Do*Ho*Wo products, so their scale
  // (and the float reorder error) grows with the output volume — compare at
  // kTol relative to the reference magnitude.
  const float gw_scale = std::max(1.0f, std::fabs(gw_ref.max() - gw_ref.min()));
  EXPECT_LE(max_abs_diff(params[0]->grad, gw_ref), kTol * gw_scale);
  const float gb_scale = std::max(1.0f, std::fabs(gb_ref.max() - gb_ref.min()));
  EXPECT_LE(max_abs_diff(params[1]->grad, gb_ref), kTol * gb_scale);
}

TEST(Conv3dFast, MatchesNaiveAcrossShapes) {
  Rng rng(31);
  const ConvCase cases[] = {
      {1, 1, 1, 4, 4, 4, 2, 1, 0},  {2, 3, 5, 7, 6, 5, 3, 1, 1},  {1, 4, 3, 8, 8, 8, 3, 2, 1},
      {2, 2, 4, 9, 7, 8, 5, 2, 2},  {1, 5, 2, 6, 9, 7, 3, 1, 2},  {3, 3, 3, 5, 5, 5, 2, 2, 0},
      {1, 16, 8, 8, 8, 8, 5, 2, 2},
  };
  for (const ConvCase& cc : cases) check_conv_case(cc, rng);
}

TEST(Conv3dFast, MatchesNaiveOnEveryPoolSize) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    core::ThreadPool pool(threads);
    core::ComputePoolGuard guard(&pool);
    Rng rng(41 + threads);
    check_conv_case({4, 3, 6, 7, 7, 7, 3, 1, 1}, rng);
    check_conv_case({2, 4, 4, 8, 6, 9, 5, 2, 2}, rng);
  }
}

// ---- parallel voxelizer / maxpool vs serial ----

TEST(VoxelizerParallel, BitwiseMatchesSerial) {
  Rng rng(5);
  chem::Molecule lig = chem::parse_smiles("CC(N)CC(=O)O");
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  const auto pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  chem::VoxelConfig vc;
  vc.grid_dim = 12;
  const chem::Voxelizer vox(vc);
  const Tensor serial = vox.voxelize(lig, pocket, {});
  EXPECT_GT(serial.norm(), 0.0f);
  core::ThreadPool pool(4);
  core::ComputePoolGuard guard(&pool);
  const Tensor parallel = vox.voxelize(lig, pocket, {});
  EXPECT_EQ(max_abs_diff(serial, parallel), 0.0f);
}

TEST(MaxPoolParallel, BitwiseMatchesSerial) {
  Rng rng(6);
  Tensor x = Tensor::randn({3, 5, 8, 8, 8}, rng);
  nn::MaxPool3d pool_layer(2, 2);
  const Tensor serial = pool_layer.forward(x);
  core::ThreadPool pool(4);
  core::ComputePoolGuard guard(&pool);
  nn::MaxPool3d pool_layer2(2, 2);
  const Tensor parallel = pool_layer2.forward(x);
  EXPECT_EQ(max_abs_diff(serial, parallel), 0.0f);
}

// ---- ThreadPool exception propagation ----

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  core::ThreadPool pool(3);
  EXPECT_THROW(core::parallel_for(pool, 64,
                                  [](size_t i) {
                                    if (i == 17) throw std::runtime_error("rank died");
                                  }),
               std::runtime_error);
  // The pool must survive a failed job batch and keep executing work.
  std::atomic<int> count{0};
  core::parallel_for(pool, 32, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, WaitIdleRethrowsSubmittedJobError) {
  core::ThreadPool pool(2);
  pool.submit([] { throw std::invalid_argument("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::invalid_argument);
  // Error is consumed: the next join is clean.
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());
}

// ---- batched predict vs per-pose predict ----

data::Sample make_sample(Rng& rng) {
  chem::Molecule lig = chem::parse_smiles("CC(N)CC(=O)O");
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  std::vector<chem::Atom> pocket = data::make_pocket({4.5f, 24, 0.6f, 0.5f, 0.1f}, rng);
  chem::VoxelConfig vc;
  vc.grid_dim = 8;
  data::Sample s;
  s.voxel = chem::Voxelizer(vc).voxelize(lig, pocket, {});
  s.graph = chem::GraphFeaturizer().featurize(lig, pocket);
  s.label = 7.0f;
  return s;
}

TEST(PredictBatch, MatchesPerPosePredict) {
  Rng rng(17);
  models::Cnn3dConfig ccfg;
  ccfg.grid_dim = 8;
  ccfg.conv_filters1 = 4;
  ccfg.conv_filters2 = 8;
  ccfg.dense_nodes = 16;
  auto cnn = std::make_shared<models::Cnn3d>(ccfg, rng);
  models::SgcnnConfig scfg;
  scfg.covalent_k = 2;
  scfg.noncovalent_k = 2;
  scfg.covalent_gather_width = 8;
  scfg.noncovalent_gather_width = 16;
  auto sg = std::make_shared<models::Sgcnn>(scfg, rng);
  models::FusionConfig fcfg;
  fcfg.kind = models::FusionKind::Mid;
  fcfg.model_specific_layers = true;
  models::FusionModel fusion(fcfg, cnn, sg, rng);
  models::LateFusion late(cnn, sg);

  std::vector<data::Sample> samples;
  for (int i = 0; i < 5; ++i) samples.push_back(make_sample(rng));
  std::vector<const data::Sample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  for (models::Regressor* model : std::initializer_list<models::Regressor*>{
           cnn.get(), sg.get(), &fusion, &late}) {
    model->set_training(false);
    const std::vector<float> batched = model->predict_batch(ptrs);
    ASSERT_EQ(batched.size(), samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      EXPECT_NEAR(batched[i], model->predict(samples[i]), kTol) << model->name() << " pose " << i;
    }
  }
}

}  // namespace
}  // namespace df
