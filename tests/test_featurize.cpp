#include <gtest/gtest.h>

#include "chem/conformer.h"
#include "chem/graph_featurizer.h"
#include "chem/smiles.h"
#include "chem/voxelizer.h"
#include "data/target.h"

namespace df::chem {
namespace {

using core::Rng;
using core::Vec3;

Molecule centered_ligand(Rng& rng) {
  Molecule m = parse_smiles("CC(N)C(=O)O");
  embed_conformer(m, rng);
  m.translate(Vec3{} - m.centroid());
  return m;
}

TEST(Voxelizer, OutputShape) {
  Rng rng(1);
  VoxelConfig cfg;
  Voxelizer vox(cfg);
  Molecule lig = centered_ligand(rng);
  core::Tensor grid = vox.voxelize(lig, {}, {});
  EXPECT_EQ(grid.shape(), (std::vector<int64_t>{1, cfg.channels(), cfg.grid_dim, cfg.grid_dim,
                                                cfg.grid_dim}));
}

TEST(Voxelizer, LigandAndProteinOccupyDisjointBlocks) {
  Rng rng(2);
  VoxelConfig cfg;
  Voxelizer vox(cfg);
  Molecule lig = centered_ligand(rng);
  core::Tensor lig_only = vox.voxelize(lig, {}, {});
  const int64_t block = kVoxelChannelsPerBlock * cfg.grid_dim * cfg.grid_dim * cfg.grid_dim;
  // Ligand-only: protein block (second half) must be empty.
  float protein_mass = 0.0f;
  for (int64_t i = block; i < lig_only.numel(); ++i) protein_mass += lig_only[i];
  EXPECT_FLOAT_EQ(protein_mass, 0.0f);

  std::vector<Atom> pocket{Atom{Element::O, Vec3{2, 0, 0}, 0, false, 1}};
  core::Tensor both = vox.voxelize(lig, pocket, {});
  protein_mass = 0.0f;
  for (int64_t i = block; i < both.numel(); ++i) protein_mass += both[i];
  EXPECT_GT(protein_mass, 0.0f);
}

TEST(Voxelizer, DensityPeaksAtAtomLocation) {
  VoxelConfig cfg;
  cfg.grid_dim = 9;
  cfg.resolution = 1.0f;
  Voxelizer vox(cfg);
  Molecule m;
  m.add_atom(Element::C, {0, 0, 0});
  core::Tensor grid = vox.voxelize(m, {}, {});
  // Channel 0 (ligand carbon): center voxel should hold the max density.
  const int G = cfg.grid_dim;
  float best = -1;
  int best_idx = -1;
  for (int i = 0; i < G * G * G; ++i) {
    if (grid[i] > best) {
      best = grid[i];
      best_idx = i;
    }
  }
  // Atom at origin is nearest the center voxel (4,4,4) for G=9.
  const int c = (4 * G + 4) * G + 4;
  EXPECT_EQ(best_idx, c);
  EXPECT_GT(best, 0.5f);
}

TEST(Voxelizer, AtomOutsideBoxContributesNothing) {
  VoxelConfig cfg;
  Voxelizer vox(cfg);
  Molecule m;
  m.add_atom(Element::C, {100, 100, 100});
  core::Tensor grid = vox.voxelize(m, {}, {});
  EXPECT_FLOAT_EQ(grid.sum(), 0.0f);
}

TEST(Voxelizer, RotationAugmentPreservesMass) {
  Rng rng(3);
  VoxelConfig cfg;
  Voxelizer vox(cfg);
  Molecule lig = centered_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 30, 0.6f, 0.5f, 0.1f}, rng);
  core::Tensor before = vox.voxelize(lig, pocket, {});
  Molecule lig2 = lig;
  std::vector<Atom> pocket2 = pocket;
  random_rotation_augment(lig2, pocket2, {}, rng, /*prob=*/1.0f);
  core::Tensor after = vox.voxelize(lig2, pocket2, {});
  // 90-degree rotations permute voxels: total density is conserved up to
  // boundary effects.
  EXPECT_NEAR(before.sum(), after.sum(), before.sum() * 0.08f + 1.0f);
}

TEST(GraphFeaturizer, NodeLayout) {
  Rng rng(4);
  GraphFeaturizer feat;
  Molecule lig = centered_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 20, 0.6f, 0.5f, 0.1f}, rng);
  graph::SpatialGraph g = feat.featurize(lig, pocket);
  EXPECT_EQ(g.num_ligand_nodes, static_cast<int32_t>(lig.num_atoms()));
  EXPECT_EQ(g.num_nodes(), static_cast<int64_t>(lig.num_atoms() + 20));
  EXPECT_EQ(g.feature_dim(), kGraphNodeFeatures);
  // is_ligand flag: last feature column.
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    const float flag = g.node_features.at(i, kGraphNodeFeatures - 1);
    EXPECT_FLOAT_EQ(flag, i < g.num_ligand_nodes ? 1.0f : 0.0f);
  }
}

TEST(GraphFeaturizer, CovalentEdgesMatchBondGraph) {
  Rng rng(5);
  GraphFeaturizer feat;
  Molecule lig = centered_ligand(rng);
  graph::SpatialGraph g = feat.featurize(lig, {});
  EXPECT_EQ(g.covalent.size(), 2 * lig.num_bonds());
}

TEST(GraphFeaturizer, NoncovalentEdgesRespectThreshold) {
  Rng rng(6);
  GraphFeaturizerConfig cfg;
  cfg.noncovalent_threshold = 4.0f;
  GraphFeaturizer feat(cfg);
  Molecule lig;
  lig.add_atom(Element::C, {0, 0, 0});
  std::vector<Atom> pocket{
      Atom{Element::C, core::Vec3{3.0f, 0, 0}, 0, false, 0},   // inside threshold
      Atom{Element::C, core::Vec3{10.0f, 0, 0}, 0, false, 0},  // outside
  };
  graph::SpatialGraph g = feat.featurize(lig, pocket);
  // Exactly one undirected ligand-pocket pair inside 4 A (plus none between
  // the two pocket atoms: 7 A apart).
  EXPECT_EQ(g.noncovalent.size(), 2u);
}

TEST(GraphFeaturizer, PocketCapKeepsNearestAtoms) {
  Rng rng(7);
  GraphFeaturizerConfig cfg;
  cfg.max_pocket_atoms = 5;
  GraphFeaturizer feat(cfg);
  Molecule lig;
  lig.add_atom(Element::C, {0, 0, 0});
  std::vector<Atom> pocket;
  for (int i = 0; i < 20; ++i) {
    pocket.push_back(Atom{Element::C, core::Vec3{static_cast<float>(i + 2), 0, 0}, 0, false, 0});
  }
  graph::SpatialGraph g = feat.featurize(lig, pocket);
  EXPECT_EQ(g.num_nodes(), 6);  // 1 ligand + 5 nearest pocket atoms
}

TEST(GraphFeaturizer, OneHotElementsExclusive) {
  Rng rng(8);
  GraphFeaturizer feat;
  Molecule lig = centered_ligand(rng);
  graph::SpatialGraph g = feat.featurize(lig, {});
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    float onehot_sum = 0;
    for (int e = 0; e < kNumElements; ++e) onehot_sum += g.node_features.at(i, e);
    EXPECT_FLOAT_EQ(onehot_sum, 1.0f);
  }
}

}  // namespace
}  // namespace df::chem
