#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/csv.h"
#include "io/h5lite.h"
#include "io/log.h"

namespace df::io {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(H5Lite, RoundTripFloatAndIntDatasets) {
  H5LiteFile f;
  f.put_floats("pred", {2, 2}, {1.5f, 2.5f, 3.5f, 4.5f});
  f.put_ints("ids", {4}, {10, 20, 30, 40});
  const std::string path = temp_path("df_h5lite_rt.h5lt");
  f.save(path);

  const H5LiteFile g = H5LiteFile::load(path);
  ASSERT_TRUE(g.has("pred"));
  ASSERT_TRUE(g.has("ids"));
  EXPECT_EQ(g.get("pred").shape, (std::vector<int64_t>{2, 2}));
  EXPECT_FLOAT_EQ(g.get("pred").floats()[3], 4.5f);
  EXPECT_EQ(g.get("ids").ints()[2], 30);
  std::filesystem::remove(path);
}

TEST(H5Lite, ShapeDataMismatchThrows) {
  H5LiteFile f;
  EXPECT_THROW(f.put_floats("x", {3}, {1.0f}), std::invalid_argument);
}

TEST(H5Lite, MissingDatasetThrows) {
  H5LiteFile f;
  EXPECT_THROW(f.get("nope"), std::out_of_range);
}

TEST(H5Lite, BadMagicRejected) {
  const std::string path = temp_path("df_h5lite_bad.h5lt");
  std::ofstream(path) << "this is not an h5lite file at all";
  EXPECT_THROW(H5LiteFile::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(H5Lite, TruncatedFileRejected) {
  H5LiteFile f;
  f.put_floats("x", {100}, std::vector<float>(100, 1.0f));
  const std::string path = temp_path("df_h5lite_trunc.h5lt");
  f.save(path);
  // chop the payload
  std::filesystem::resize_file(path, 40);
  EXPECT_THROW(H5LiteFile::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(H5Lite, NonexistentPathThrows) {
  EXPECT_THROW(H5LiteFile::load("/nonexistent/dir/x.h5lt"), std::runtime_error);
}

TEST(H5Lite, EmptyFileRoundTrips) {
  H5LiteFile f;
  const std::string path = temp_path("df_h5lite_empty.h5lt");
  f.save(path);
  const H5LiteFile g = H5LiteFile::load(path);
  EXPECT_TRUE(g.datasets().empty());
  std::filesystem::remove(path);
}

TEST(H5Lite, SaveAtomicLeavesNoTempFile) {
  H5LiteFile f;
  f.put_floats("w", {2}, {1.0f, 2.0f});
  const std::string path = temp_path("df_h5lite_atomic.h5lt");
  f.save_atomic(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FLOAT_EQ(H5LiteFile::load(path).get("w").floats()[1], 2.0f);
  std::filesystem::remove(path);
}

TEST(H5Lite, StaleTempFromKilledSaveIsSweptAndIgnored) {
  // A process killed between save(tmp) and the rename leaves `path.tmp`
  // behind. It must never shadow or corrupt the committed file, and the
  // next load sweeps it so retried save_atomic calls start clean.
  H5LiteFile f;
  f.put_floats("w", {2}, {1.0f, 2.0f});
  const std::string path = temp_path("df_h5lite_stale.h5lt");
  f.save_atomic(path);
  std::ofstream(path + ".tmp") << "torn write from a killed saver";
  ASSERT_TRUE(std::filesystem::exists(path + ".tmp"));

  const H5LiteFile g = H5LiteFile::load(path);  // reads the committed file…
  EXPECT_FLOAT_EQ(g.get("w").floats()[0], 1.0f);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // …and sweeps the temp

  // A retried atomic save on the same path also succeeds after a stale temp
  // reappears (rename replaces it).
  std::ofstream(path + ".tmp") << "torn again";
  f.save_atomic(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FLOAT_EQ(H5LiteFile::load(path).get("w").floats()[1], 2.0f);
  std::filesystem::remove(path);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = temp_path("df_test.csv");
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"1", "hello"});
    w.row_values({2.5, 3.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,hello");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,3.5");
  std::filesystem::remove(path);
}

TEST(Csv, ColumnCountEnforced) {
  const std::string path = temp_path("df_test2.csv");
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({"only one"}), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Log, LevelFiltering) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_debug("should be suppressed");  // visually verified by absence
  set_log_level(LogLevel::Warn);
}

}  // namespace
}  // namespace df::io
