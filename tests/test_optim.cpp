// Optimizer behaviour: each of the Table-1 optimizers must minimize a
// simple convex objective, and their update rules must match hand-computed
// first steps where tractable.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/optim.h"

namespace df::nn {
namespace {

using core::Tensor;

/// Quadratic bowl: L = 0.5 * ||w - target||^2, grad = w - target.
float quadratic_step(Parameter& p, const Tensor& target) {
  float loss = 0.0f;
  for (int64_t i = 0; i < p.value.numel(); ++i) {
    const float d = p.value[i] - target[i];
    loss += 0.5f * d * d;
    p.grad[i] = d;
  }
  return loss;
}

class OptimizerConvergence : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerConvergence, MinimizesQuadratic) {
  Parameter p(Tensor::from({5.0f, -3.0f, 2.0f}), "w");
  const Tensor target = Tensor::from({1.0f, 1.0f, 1.0f});
  const float lr = GetParam() == OptimizerKind::kAdadelta ? 1.0f : 0.1f;
  auto opt = make_optimizer(GetParam(), {&p}, lr);
  float first = quadratic_step(p, target);
  const int iters = GetParam() == OptimizerKind::kAdadelta ? 3000 : 500;
  for (int i = 0; i < iters; ++i) {
    opt->step();
    opt->zero_grad();
    quadratic_step(p, target);
  }
  const float last = quadratic_step(p, target);
  EXPECT_LT(last, first * 0.05f) << optimizer_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OptimizerConvergence,
                         ::testing::Values(OptimizerKind::kSGD, OptimizerKind::kAdam,
                                           OptimizerKind::kAdamW, OptimizerKind::kRMSprop,
                                           OptimizerKind::kAdadelta),
                         [](const auto& info) { return optimizer_name(info.param); });

TEST(Sgd, PlainStepIsLrTimesGrad) {
  Parameter p(Tensor::from({1.0f}), "w");
  p.grad[0] = 2.0f;
  SGD opt({&p}, 0.5f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p(Tensor::from({0.0f}), "w");
  SGD opt({&p}, 1.0f, 0.9f);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad[0] = 1.0f;
  opt.step();  // v=1.9, w=-2.9
  EXPECT_NEAR(p.value[0], -2.9f, 1e-6f);
}

TEST(AdamStep, FirstStepIsLrSized) {
  // Adam's bias correction makes the first update ~= lr * sign(grad).
  Parameter p(Tensor::from({1.0f}), "w");
  p.grad[0] = 123.0f;
  Adam opt({&p}, 0.01f);
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.01f, 1e-4f);
}

TEST(AdamW, DecoupledDecayShrinksWeights) {
  Parameter p(Tensor::from({10.0f}), "w");
  p.grad[0] = 0.0f;
  Adam opt({&p}, 0.1f, 0.9f, 0.999f, 1e-8f, 0.5f, /*decoupled=*/true);
  opt.step();
  // Zero gradient: update is purely lr * wd * w = 0.1*0.5*10 = 0.5
  EXPECT_NEAR(p.value[0], 9.5f, 1e-4f);
}

TEST(Optimizer, ZeroGradClears) {
  Parameter p(Tensor::from({1.0f, 2.0f}), "w");
  p.grad.fill(3.0f);
  SGD opt({&p}, 0.1f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.norm(), 0.0f);
}

TEST(Optimizer, LrSetter) {
  Parameter p(Tensor::from({1.0f}), "w");
  SGD opt({&p}, 0.1f);
  opt.set_lr(0.2f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.2f);
}

TEST(Optimizer, FactoryProducesEveryKind) {
  Parameter p(Tensor::from({1.0f}), "w");
  for (OptimizerKind k : {OptimizerKind::kAdam, OptimizerKind::kAdamW, OptimizerKind::kRMSprop,
                          OptimizerKind::kAdadelta, OptimizerKind::kSGD}) {
    auto opt = make_optimizer(k, {&p}, 0.01f);
    ASSERT_NE(opt, nullptr);
    p.grad[0] = 1.0f;
    opt->step();  // must not crash
  }
}

}  // namespace
}  // namespace df::nn
