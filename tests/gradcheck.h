// Finite-difference gradient checking shared by the NN/graph/model tests.
// Backward passes in this library are hand-written, so every layer gets a
// numeric check: analytic dL/dtheta and dL/dx must match central
// differences within tolerance.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/tensor.h"
#include "models/regressor.h"
#include "nn/dropout.h"
#include "nn/module.h"

namespace df::testing {

/// Scalar loss used for checks: L = sum(w_i * y_i) with fixed pseudo-random
/// weights so all output elements contribute distinctly.
inline float weighted_sum(const core::Tensor& y) {
  float acc = 0.0f;
  for (int64_t i = 0; i < y.numel(); ++i) {
    acc += y[i] * (0.3f + 0.1f * static_cast<float>(i % 7));
  }
  return acc;
}

inline core::Tensor weighted_sum_grad(const core::Tensor& y) {
  core::Tensor g(y.shape());
  for (int64_t i = 0; i < y.numel(); ++i) g[i] = 0.3f + 0.1f * static_cast<float>(i % 7);
  return g;
}

/// Check analytic parameter gradients of `forward` (a closure re-running the
/// module on a fixed input) against central differences.
/// `forward` must be deterministic (no dropout).
inline void check_param_gradients(nn::Module& module,
                                  const std::function<core::Tensor()>& forward,
                                  float eps = 1e-2f, float tol = 2e-2f,
                                  int max_checks_per_param = 12) {
  module.zero_grad();
  core::Tensor y = forward();
  module.backward(weighted_sum_grad(y));

  for (nn::Parameter* p : module.parameters()) {
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / max_checks_per_param);
    for (int64_t i = 0; i < n; i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = weighted_sum(forward());
      p->value[i] = orig - eps;
      const float lm = weighted_sum(forward());
      p->value[i] = orig;
      const float numeric = (lp - lm) / (2.0f * eps);
      const float analytic = p->grad[i];
      const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic / scale, numeric / scale, tol)
          << "param " << p->name << " index " << i;
    }
  }
}

/// Check analytic input gradients against central differences.
inline void check_input_gradients(nn::Module& module, core::Tensor x, float eps = 1e-2f,
                                  float tol = 2e-2f, int max_checks = 16) {
  module.zero_grad();
  core::Tensor y = module.forward(x);
  core::Tensor gx = module.backward(weighted_sum_grad(y));

  const int64_t n = x.numel();
  const int64_t stride = std::max<int64_t>(1, n / max_checks);
  for (int64_t i = 0; i < n; i += stride) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = weighted_sum(module.forward(x));
    x[i] = orig - eps;
    const float lm = weighted_sum(module.forward(x));
    x[i] = orig;
    const float numeric = (lp - lm) / (2.0f * eps);
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(gx[i])});
    EXPECT_NEAR(gx[i] / scale, numeric / scale, tol) << "input index " << i;
  }
}

/// End-to-end composite gradient check through a whole Regressor: the loss
/// is the raw prediction (dL/dpred = 1), so analytic parameter gradients
/// from one forward_train+backward must match central differences of
/// repeated forward_train calls — through every layer of the model at
/// once, featurized inputs included, not just per-layer.
///
/// Dropout may be ACTIVE: each forward runs under the same
/// nn::KeyedDropoutScope key, so the masks are identical across the
/// perturbed re-evaluations and the composite function stays
/// deterministic — exactly the property the training engine relies on.
/// `max_params` caps how many parameter tensors are probed (deep models),
/// cycling a stride so early and late layers both get coverage.
inline void check_model_gradients(models::Regressor& model, const data::Sample& sample,
                                  uint64_t dropout_key, float eps = 1e-2f, float tol = 5e-2f,
                                  int max_checks_per_param = 3, int max_params = 24) {
  auto forward = [&]() -> float {
    nn::KeyedDropoutScope scope(dropout_key);
    return model.forward_train(sample);
  };
  model.set_training(true);
  model.zero_grad();
  {
    nn::KeyedDropoutScope scope(dropout_key);
    (void)model.forward_train(sample);
    model.backward(1.0f);
  }

  const std::vector<nn::Parameter*> params = model.trainable_parameters();
  const size_t pstride =
      std::max<size_t>(1, params.size() / static_cast<size_t>(max_params));
  int checked = 0;
  for (size_t pi = 0; pi < params.size(); pi += pstride) {
    nn::Parameter* p = params[pi];
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / max_checks_per_param);
    for (int64_t i = 0; i < n; i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = forward();
      p->value[i] = orig - eps;
      const float lm = forward();
      p->value[i] = orig;
      const float numeric = (lp - lm) / (2.0f * eps);
      const float analytic = p->grad[i];
      // Skip entries where both signals drown in float32 FD noise (a
      // dropout-zeroed path, a dead ReLU): nothing to compare there.
      if (std::abs(numeric) < 5e-4f && std::abs(analytic) < 5e-4f) continue;
      const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic / scale, numeric / scale, tol)
          << "param " << pi << " (" << p->name << ") index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0) << "composite gradcheck compared nothing";
}

}  // namespace df::testing
