// Finite-difference gradient checking shared by the NN/graph/model tests.
// Backward passes in this library are hand-written, so every layer gets a
// numeric check: analytic dL/dtheta and dL/dx must match central
// differences within tolerance.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/tensor.h"
#include "nn/module.h"

namespace df::testing {

/// Scalar loss used for checks: L = sum(w_i * y_i) with fixed pseudo-random
/// weights so all output elements contribute distinctly.
inline float weighted_sum(const core::Tensor& y) {
  float acc = 0.0f;
  for (int64_t i = 0; i < y.numel(); ++i) {
    acc += y[i] * (0.3f + 0.1f * static_cast<float>(i % 7));
  }
  return acc;
}

inline core::Tensor weighted_sum_grad(const core::Tensor& y) {
  core::Tensor g(y.shape());
  for (int64_t i = 0; i < y.numel(); ++i) g[i] = 0.3f + 0.1f * static_cast<float>(i % 7);
  return g;
}

/// Check analytic parameter gradients of `forward` (a closure re-running the
/// module on a fixed input) against central differences.
/// `forward` must be deterministic (no dropout).
inline void check_param_gradients(nn::Module& module,
                                  const std::function<core::Tensor()>& forward,
                                  float eps = 1e-2f, float tol = 2e-2f,
                                  int max_checks_per_param = 12) {
  module.zero_grad();
  core::Tensor y = forward();
  module.backward(weighted_sum_grad(y));

  for (nn::Parameter* p : module.parameters()) {
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / max_checks_per_param);
    for (int64_t i = 0; i < n; i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = weighted_sum(forward());
      p->value[i] = orig - eps;
      const float lm = weighted_sum(forward());
      p->value[i] = orig;
      const float numeric = (lp - lm) / (2.0f * eps);
      const float analytic = p->grad[i];
      const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic / scale, numeric / scale, tol)
          << "param " << p->name << " index " << i;
    }
  }
}

/// Check analytic input gradients against central differences.
inline void check_input_gradients(nn::Module& module, core::Tensor x, float eps = 1e-2f,
                                  float tol = 2e-2f, int max_checks = 16) {
  module.zero_grad();
  core::Tensor y = module.forward(x);
  core::Tensor gx = module.backward(weighted_sum_grad(y));

  const int64_t n = x.numel();
  const int64_t stride = std::max<int64_t>(1, n / max_checks);
  for (int64_t i = 0; i < n; i += stride) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = weighted_sum(module.forward(x));
    x[i] = orig - eps;
    const float lm = weighted_sum(module.forward(x));
    x[i] = orig;
    const float numeric = (lp - lm) / (2.0f * eps);
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(gx[i])});
    EXPECT_NEAR(gx[i] / scale, numeric / scale, tol) << "input index " << i;
  }
}

}  // namespace df::testing
