#include <gtest/gtest.h>

#include <chrono>

#include "chem/conformer.h"
#include "chem/smiles.h"
#include "data/target.h"
#include "dock/conveyorlc.h"
#include "dock/mmgbsa.h"

namespace df::dock {
namespace {

using core::Rng;
using core::Vec3;

Molecule posed_ligand(Rng& rng) {
  Molecule m = chem::parse_smiles("CC(N)CC(=O)O");
  chem::embed_conformer(m, rng);
  m.translate(Vec3{} - m.centroid());
  return m;
}

TEST(MmGbsa, BoundStateBeatsUnbound) {
  Rng rng(1);
  Molecule lig = posed_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 48, 0.65f, 0.5f, 0.12f}, rng);
  const float bound = mmgbsa_score(lig, pocket);
  Molecule far = lig;
  far.translate({60, 0, 0});
  const float unbound = mmgbsa_score(far, pocket);
  EXPECT_LT(bound, unbound + 1e-3f);
}

TEST(MmGbsa, IsSlowerThanVina) {
  // The cost asymmetry is load-bearing for the paper's Table 7 story.
  Rng rng(2);
  Molecule lig = posed_ligand(rng);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 64, 0.7f, 0.5f, 0.1f}, rng);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) vina_score(lig, pocket);
  const double vina_t = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) mmgbsa_score(lig, pocket);
  const double mm_t = std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  EXPECT_GT(mm_t, vina_t * 5.0);
}

TEST(AmplSurrogate, PredictBeforeFitThrows) {
  AmplMmGbsaSurrogate s;
  Rng rng(3);
  Molecule lig = posed_ligand(rng);
  EXPECT_FALSE(s.trained());
  EXPECT_THROW(s.predict(lig, {}), std::runtime_error);
}

TEST(AmplSurrogate, FitValidatesInputs) {
  AmplMmGbsaSurrogate s;
  EXPECT_THROW(s.fit({}, {}, {}), std::invalid_argument);
}

TEST(AmplSurrogate, LearnsMmGbsaWithinSampleError) {
  Rng rng(4);
  std::vector<Atom> pocket = data::make_pocket({5.0f, 48, 0.65f, 0.5f, 0.12f}, rng);
  std::vector<Molecule> poses;
  std::vector<std::vector<Atom>> pockets;
  std::vector<float> scores;
  for (int i = 0; i < 40; ++i) {
    Molecule lig = posed_ligand(rng);
    lig.translate({rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)});
    // Mirror the campaign's reality: the surrogate is fitted on *docked*
    // poses, never on clashing geometries whose LJ term explodes.
    const float y = mmgbsa_score(lig, pocket);
    if (std::abs(y) > 80.0f) continue;
    poses.push_back(lig);
    pockets.push_back(pocket);
    scores.push_back(y);
  }
  ASSERT_GE(poses.size(), 10u);
  AmplMmGbsaSurrogate s;
  s.fit(poses, pockets, scores);
  EXPECT_TRUE(s.trained());
  // In-sample predictions must correlate strongly with the target.
  double err = 0, var = 0, mean = 0;
  for (float v : scores) mean += v;
  mean /= scores.size();
  for (size_t i = 0; i < poses.size(); ++i) {
    const float p = s.predict(poses[i], pockets[i]);
    err += (p - scores[i]) * (p - scores[i]);
    var += (scores[i] - mean) * (scores[i] - mean);
  }
  // The target includes a local minimization the features cannot see, so
  // demand a meaningful but not tight fit: clearly better than predicting
  // the mean (R^2 > 0.25 in-sample).
  EXPECT_LT(err, var * 0.75);
}

TEST(ConveyorLC, ReceptorPrepCentersSite) {
  std::vector<Atom> pocket{Atom{chem::Element::C, Vec3{2, 0, 0}, 0, false, 0},
                           Atom{chem::Element::C, Vec3{-2, 4, 0}, 0, false, 0}};
  ReceptorModel r = ConveyorLC::prepare_receptor(pocket);
  EXPECT_FLOAT_EQ(r.site_center.x, 0.0f);
  EXPECT_FLOAT_EQ(r.site_center.y, 2.0f);
}

TEST(ConveyorLC, EndToEndProducesScoredPoses) {
  Rng rng(5);
  PipelineConfig cfg;
  cfg.docking.num_runs = 4;
  cfg.docking.steps_per_run = 40;
  cfg.rescore_top_n = 2;
  ConveyorLC pipeline(cfg);
  ReceptorModel receptor =
      ConveyorLC::prepare_receptor(data::make_pocket({5.0f, 40, 0.65f, 0.5f, 0.1f}, rng));
  Molecule raw = chem::parse_smiles("CCOC(=O)C1CCNCC1");
  auto res = pipeline.run(raw, receptor, rng);
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(res->poses.empty());
  EXPECT_EQ(res->mmgbsa_scores.size(),
            std::min<size_t>(2, res->poses.size()));
  EXPECT_GT(res->docking_seconds, 0.0);
  EXPECT_GT(res->mmgbsa_seconds, 0.0);
}

TEST(ConveyorLC, RejectsMetalLigand) {
  Rng rng(6);
  ConveyorLC pipeline;
  ReceptorModel receptor =
      ConveyorLC::prepare_receptor(data::make_pocket({5.0f, 30, 0.6f, 0.5f, 0.1f}, rng));
  Molecule raw;
  raw.add_atom(chem::Element::C);
  raw.add_atom(chem::Element::Metal);
  EXPECT_FALSE(pipeline.run(raw, receptor, rng).has_value());
}

TEST(ConveyorLC, MmGbsaStageOptional) {
  Rng rng(7);
  PipelineConfig cfg;
  cfg.run_mmgbsa = false;
  cfg.docking.num_runs = 2;
  cfg.docking.steps_per_run = 20;
  ConveyorLC pipeline(cfg);
  ReceptorModel receptor =
      ConveyorLC::prepare_receptor(data::make_pocket({5.0f, 30, 0.6f, 0.5f, 0.1f}, rng));
  auto res = pipeline.run(chem::parse_smiles("CCCCO"), receptor, rng);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->mmgbsa_scores.empty());
}

}  // namespace
}  // namespace df::dock
