// Cross-module property tests: invariants that must hold over randomized
// inputs (parameterized over seeds), complementing the per-module unit
// tests with broader, generative coverage.
#include <gtest/gtest.h>

#include "chem/conformer.h"
#include "chem/graph_featurizer.h"
#include "chem/smiles.h"
#include "chem/voxelizer.h"
#include "data/assay.h"
#include "data/target.h"
#include "dock/docking.h"
#include "stats/metrics.h"

namespace df {
namespace {

using core::Rng;

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, OracleIsDeterministicAndBounded) {
  Rng rng(GetParam());
  const data::Target t = data::make_target(data::TargetKind::Protease1, rng);
  chem::Molecule m = chem::generate_molecule({}, rng);
  chem::embed_conformer(m, rng);
  m.translate(core::Vec3{} - m.centroid());
  const float a = data::oracle_pk(m, t.pocket, t.oracle, nullptr);
  const float b = data::oracle_pk(m, t.pocket, t.oracle, nullptr);
  EXPECT_FLOAT_EQ(a, b);
  EXPECT_GE(a, 2.0f);
  EXPECT_LE(a, 11.5f);
}

TEST_P(SeededProperty, VoxelMassGrowsWithAtoms) {
  // Adding an in-box atom can only add density.
  Rng rng(GetParam());
  chem::VoxelConfig vc;
  vc.grid_dim = 8;
  chem::Voxelizer vox(vc);
  chem::Molecule m;
  m.add_atom(chem::Element::C, {0, 0, 0});
  const float one = vox.voxelize(m, {}, {}).sum();
  m.add_atom(chem::Element::N, {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)});
  const float two = vox.voxelize(m, {}, {}).sum();
  EXPECT_GT(two, one);
}

TEST_P(SeededProperty, GraphFeaturizerEdgeSymmetry) {
  // Every directed edge has its reverse in the same edge list.
  Rng rng(GetParam());
  chem::Molecule lig = chem::generate_molecule({}, rng);
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  const auto pocket = data::make_pocket({5.0f, 30, 0.6f, 0.5f, 0.1f}, rng);
  const graph::SpatialGraph g = chem::GraphFeaturizer().featurize(lig, pocket);
  auto symmetric = [](const graph::EdgeList& e) {
    std::multiset<std::pair<int32_t, int32_t>> fwd, rev;
    for (size_t i = 0; i < e.size(); ++i) {
      fwd.emplace(e.src[i], e.dst[i]);
      rev.emplace(e.dst[i], e.src[i]);
    }
    return fwd == rev;
  };
  EXPECT_TRUE(symmetric(g.covalent));
  EXPECT_TRUE(symmetric(g.noncovalent));
}

TEST_P(SeededProperty, DockingIsDeterministicGivenSeed) {
  Rng setup(GetParam());
  chem::Molecule lig = chem::generate_molecule({}, setup);
  chem::embed_conformer(lig, setup);
  lig.translate(core::Vec3{} - lig.centroid());
  const auto pocket = data::make_pocket({5.0f, 32, 0.6f, 0.5f, 0.1f}, setup);
  dock::DockingConfig cfg;
  cfg.num_runs = 2;
  cfg.steps_per_run = 25;
  dock::DockingEngine engine(cfg);
  Rng r1(GetParam() + 1), r2(GetParam() + 1);
  const auto a = engine.dock(lig, pocket, {}, r1);
  const auto b = engine.dock(lig, pocket, {}, r2);
  ASSERT_EQ(a.poses.size(), b.poses.size());
  for (size_t i = 0; i < a.poses.size(); ++i) {
    EXPECT_FLOAT_EQ(a.poses[i].score, b.poses[i].score);
  }
}

TEST_P(SeededProperty, RigidTransformPreservesVinaScore) {
  // Scoring is invariant under a rigid transform applied to BOTH ligand and
  // pocket (only relative geometry matters).
  Rng rng(GetParam());
  chem::Molecule lig = chem::generate_molecule({}, rng);
  chem::embed_conformer(lig, rng);
  lig.translate(core::Vec3{} - lig.centroid());
  auto pocket = data::make_pocket({5.0f, 32, 0.6f, 0.5f, 0.1f}, rng);
  const float before = dock::vina_score(lig, pocket);
  const core::Vec3 axis = core::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  const float angle = rng.uniform(0, 3.0f);
  const core::Vec3 shift{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
  lig.rotate({0, 0, 0}, axis, angle);
  lig.translate(shift);
  for (chem::Atom& a : pocket) {
    a.pos = core::rotate_axis_angle(a.pos, axis, angle) + shift;
  }
  EXPECT_NEAR(dock::vina_score(lig, pocket), before, std::abs(before) * 0.01f + 1e-3f);
}

TEST_P(SeededProperty, AssayMonotoneInAffinityOnAverage) {
  Rng rng(GetParam());
  data::AssayConfig cfg;
  cfg.dead_fraction = 0.0f;
  double weak = 0, strong = 0;
  for (int i = 0; i < 100; ++i) {
    weak += data::percent_inhibition(3.0f, 100.0f, rng, cfg);
    strong += data::percent_inhibition(7.0f, 100.0f, rng, cfg);
  }
  EXPECT_GT(strong, weak);
}

TEST_P(SeededProperty, SpearmanBoundedAndSymmetric) {
  Rng rng(GetParam());
  std::vector<float> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  const float sab = stats::spearman(a, b);
  EXPECT_GE(sab, -1.0f);
  EXPECT_LE(sab, 1.0f);
  EXPECT_FLOAT_EQ(sab, stats::spearman(b, a));
}

TEST_P(SeededProperty, SmilesRoundTripPreservesDescriptors) {
  Rng rng(GetParam());
  const chem::Molecule m = chem::generate_molecule({}, rng);
  const chem::Molecule m2 = chem::parse_smiles(chem::write_smiles(m));
  EXPECT_EQ(m2.num_rings(), m.num_rings());
  EXPECT_EQ(m2.num_hbond_acceptors(), m.num_hbond_acceptors());
  EXPECT_NEAR(m2.molecular_weight(), m.molecular_weight(), 1.5f);  // implicit-H rederivation
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace df
