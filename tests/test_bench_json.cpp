// Unit pins for the bench JSON emission helpers (bench/bench_common.h).
// Every runtime string a bench interpolates into --json output goes
// through json_escape; a backend name with a quote or backslash used to
// corrupt the whole document (PR 8 fixed the emission path).
#include <gtest/gtest.h>

#include <string>

#include "bench_common.h"

namespace df {
namespace {

TEST(BenchJson, EscapePassesCleanStringsThrough) {
  EXPECT_EQ(bench::json_escape(""), "");
  EXPECT_EQ(bench::json_escape("fusion_int8"), "fusion_int8");
  EXPECT_EQ(bench::json_escape("poses/s @ batch=32 [p50]"), "poses/s @ batch=32 [p50]");
}

TEST(BenchJson, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(bench::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(bench::json_escape("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
  // A backslash before a quote must not swallow the quote escape.
  EXPECT_EQ(bench::json_escape("\\\""), "\\\\\\\"");
}

TEST(BenchJson, EscapesControlCharacters) {
  EXPECT_EQ(bench::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(bench::json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(bench::json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(bench::json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(bench::json_escape("a\fb"), "a\\fb");
  // Control characters without a named short escape become \u00XX.
  EXPECT_EQ(bench::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(bench::json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(bench::json_escape(std::string(1, '\0')), "\\u0000");
}

TEST(BenchJson, LeavesNonAsciiBytesAlone) {
  // UTF-8 multibyte sequences pass through untouched (JSON is UTF-8).
  EXPECT_EQ(bench::json_escape("\xc3\xa9"), "\xc3\xa9");
}

}  // namespace
}  // namespace df
